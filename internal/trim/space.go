package trim

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// The deep space accountant: where the store's bytes actually go, walked
// exactly under the read lock. Stats.ApproxBytes has always summed term
// text as a portable proxy for the paper's §6 space trade-off; this file
// breaks that figure down far enough to act on — total vs unique string
// bytes per triple position, the hash-index overhead the three
// per-position indexes add on top, per-predicate byte attribution joined
// with the PR 6 cardinality table, and the projected win of the uint32
// term dictionary (ROADMAP item 1), so the dictionary PR lands against a
// measured baseline instead of a guess.
//
// All overhead figures are estimates from the map-geometry model below
// (Go does not expose per-map footprints); the string-byte figures are
// exact sums over the live graph.

// Word and header sizes of the 64-bit memory model the estimates assume.
const (
	wordBytes         = 8
	stringHeaderBytes = 2 * wordBytes                   // pointer + length
	termBytes         = wordBytes + 2*stringHeaderBytes // kind word + value/dtype headers = 40
	tripleBytes       = 3 * termBytes                   // = 120
	sliceHeaderBytes  = 3 * wordBytes                   // pointer + len + cap
)

// mapBytes estimates the resident footprint of a Go map holding n entries
// of the given key+value size: the hmap header plus power-of-two buckets
// sized for the 6.5 load factor, each bucket holding 8 slots (tophash
// byte per slot, then keys, then values) and an overflow pointer.
// Overflow buckets are ignored, so this is a slight underestimate for
// maps with clustered hashes.
func mapBytes(n, kvBytes int) int64 {
	if n == 0 {
		return 0
	}
	const hmapHeaderBytes = 48 // runtime.hmap: count, flags/B/noverflow/hash0, buckets, oldbuckets, nevacuate, extra
	buckets := 1
	for float64(n) > 6.5*float64(buckets) {
		buckets *= 2
	}
	perBucket := int64(8 + 8*kvBytes + wordBytes) // 8 tophash bytes + 8 kv slots + overflow pointer
	return hmapHeaderBytes + int64(buckets)*perBucket
}

// PositionSpace is the string-byte accounting of one triple position:
// how many term references the position holds, how many distinct terms
// they collapse to, and the byte sums of both views. TotalBytes minus
// UniqueBytes is exactly what interning this position would save in
// string data.
type PositionSpace struct {
	Refs        int   `json:"refs"`
	Unique      int   `json:"unique"`
	TotalBytes  int64 `json:"total_bytes"`
	UniqueBytes int64 `json:"unique_bytes"`
}

// IndexSpace is one hash index's estimated overhead: the outer map
// (term -> set pointer), plus every inner triple set with its 120-byte
// triple-struct keys and bucket metadata.
type IndexSpace struct {
	Name          string `json:"name"`
	Buckets       int    `json:"buckets"`
	Entries       int    `json:"entries"`
	OverheadBytes int64  `json:"overhead_bytes"`
}

// PredicateSpace attributes string bytes to one predicate: the bytes of
// every triple carrying it (all three positions, total view), joined with
// the cardinality table's exact triple count. Share is the fraction of
// the store's total string bytes.
type PredicateSpace struct {
	Predicate  string  `json:"predicate"`
	Triples    int     `json:"triples"`
	TotalBytes int64   `json:"total_bytes"`
	Share      float64 `json:"share"`
}

// InterningProjection is the measured business case for ROADMAP item 1:
// what the store would cost if every distinct term were interned to a
// uint32 id — one string copy per distinct term in a dictionary, 12-byte
// triples, and uint32 index postings instead of 120-byte triple keys.
type InterningProjection struct {
	// DictionaryBytes: unique string data + an id->term table (string
	// headers) + a term->id lookup map.
	DictionaryBytes int64 `json:"dictionary_bytes"`
	// TripleBytes: triples at 3 uint32 ids each.
	TripleBytes int64 `json:"triple_bytes"`
	// IndexBytes: three postings layouts at one uint32 triple ref per
	// entry plus a slice header per distinct key.
	IndexBytes int64 `json:"index_bytes"`
	// ProjectedBytes is the dictionary-store total; SavedBytes and Factor
	// compare it against the current EstimatedBytes.
	ProjectedBytes int64   `json:"projected_bytes"`
	SavedBytes     int64   `json:"saved_bytes"`
	Factor         float64 `json:"factor"`
}

// SpaceStats is the deep space report for the store, produced by
// Manager.Space / Stats().Space and served by `trimq space` and
// /debug/space.
type SpaceStats struct {
	Triples    int    `json:"triples"`
	Generation uint64 `json:"generation"`

	// Per-position string accounting and the store-wide roll-up.
	// UniqueStringBytes dedupes terms across all three positions — the
	// figure a single shared dictionary would store — so it can be
	// smaller than the sum of the per-position unique bytes.
	Subject           PositionSpace `json:"subject"`
	Predicate         PositionSpace `json:"predicate"`
	Object            PositionSpace `json:"object"`
	TotalStringBytes  int64         `json:"total_string_bytes"`
	UniqueStringBytes int64         `json:"unique_string_bytes"`
	UniqueTerms       int           `json:"unique_terms"`
	// DuplicationRatio is total over unique string bytes: how many times
	// the average string byte is stored. 1.0 means no duplication.
	DuplicationRatio float64 `json:"duplication_ratio"`

	// Struct and index overhead estimates. GraphBytes covers the ground-
	// truth triple set (its 120-byte triple keys and map buckets); each
	// index stores its own triple-key copies, so a stored triple costs
	// four struct copies before any string data.
	GraphBytes         int64        `json:"graph_bytes"`
	Indexes            []IndexSpace `json:"indexes"`
	IndexOverheadBytes int64        `json:"index_overhead_bytes"`
	// CardOverheadBytes is the per-predicate cardinality table
	// (refcounted subject/object maps).
	CardOverheadBytes int64 `json:"card_overhead_bytes"`

	// EstimatedBytes is the resident-store estimate: graph + indexes +
	// cardinality overhead + one string-data copy per term reference
	// (term structs in map keys share string backings with each other,
	// but distinct parses of equal strings do not, so the total view is
	// the honest upper bound the duplication ratio discounts).
	EstimatedBytes int64   `json:"estimated_bytes"`
	BytesPerTriple float64 `json:"bytes_per_triple"`

	// Predicates attributes string bytes per predicate, heaviest first.
	Predicates []PredicateSpace `json:"predicates"`

	// Interning is the projected dictionary-store cost (ROADMAP item 1).
	Interning InterningProjection `json:"interning"`
}

// Space computes the deep space report in one pass under the read lock
// and republishes the trim.space.* gauges.
func (m *Manager) Space() SpaceStats {
	m.mu.RLock()
	s := m.spaceLocked()
	m.mu.RUnlock()
	mSpaceTotal.Inc()
	gSpaceStringBytes.Set(s.TotalStringBytes)
	gSpaceUniqueBytes.Set(s.UniqueStringBytes)
	gSpaceBytesPerTriple.Set(int64(s.BytesPerTriple))
	gSpaceDupPct.Set(int64(s.DuplicationRatio * 100))
	gSpaceInterningSaved.Set(s.Interning.SavedBytes)
	return s
}

// termStringBytes is the string data one term references (lexical form
// plus datatype IRI).
func termStringBytes(t rdf.Term) int64 {
	return int64(len(t.Value()) + len(t.Datatype()))
}

// spaceLocked walks the graph, indexes, and cardinality table under the
// held lock and assembles the report.
func (m *Manager) spaceLocked() SpaceStats {
	s := SpaceStats{
		Triples:    m.graph.Len(),
		Generation: m.generation,
	}

	seenAll := make(map[rdf.Term]struct{})
	perPred := make(map[rdf.Term]int64, len(m.predCards))
	positions := [3]*PositionSpace{&s.Subject, &s.Predicate, &s.Object}
	seenPos := [3]map[rdf.Term]struct{}{
		make(map[rdf.Term]struct{}),
		make(map[rdf.Term]struct{}),
		make(map[rdf.Term]struct{}),
	}
	m.graph.Each(func(t rdf.Triple) bool {
		for i, term := range [3]rdf.Term{t.Subject, t.Predicate, t.Object} {
			b := termStringBytes(term)
			p := positions[i]
			p.Refs++
			p.TotalBytes += b
			if _, ok := seenPos[i][term]; !ok {
				seenPos[i][term] = struct{}{}
				p.Unique++
				p.UniqueBytes += b
			}
			if _, ok := seenAll[term]; !ok {
				seenAll[term] = struct{}{}
				s.UniqueStringBytes += b
			}
			perPred[t.Predicate] += b
		}
		return true
	})
	s.UniqueTerms = len(seenAll)
	s.TotalStringBytes = s.Subject.TotalBytes + s.Predicate.TotalBytes + s.Object.TotalBytes
	if s.UniqueStringBytes > 0 {
		s.DuplicationRatio = float64(s.TotalStringBytes) / float64(s.UniqueStringBytes)
	}

	s.GraphBytes = mapBytes(s.Triples, tripleBytes)
	indexes := []struct {
		name string
		idx  map[rdf.Term]map[rdf.Triple]struct{}
	}{
		{"spo", m.bySubject},
		{"pos", m.byPredicate},
		{"osp", m.byObject},
	}
	for _, ix := range indexes {
		is := IndexSpace{Name: ix.name, Buckets: len(ix.idx)}
		is.OverheadBytes = mapBytes(len(ix.idx), termBytes+wordBytes) // outer: term key -> set pointer
		for _, set := range ix.idx {
			is.Entries += len(set)
			is.OverheadBytes += mapBytes(len(set), tripleBytes)
		}
		s.Indexes = append(s.Indexes, is)
		s.IndexOverheadBytes += is.OverheadBytes
	}

	s.CardOverheadBytes = mapBytes(len(m.predCards), termBytes+wordBytes)
	for _, pc := range m.predCards {
		s.CardOverheadBytes += wordBytes + 3*wordBytes // predCard struct (int + 2 map pointers, padded)
		s.CardOverheadBytes += mapBytes(len(pc.subjects), termBytes+wordBytes)
		s.CardOverheadBytes += mapBytes(len(pc.objects), termBytes+wordBytes)
	}

	s.EstimatedBytes = s.GraphBytes + s.IndexOverheadBytes + s.CardOverheadBytes + s.TotalStringBytes
	if s.Triples > 0 {
		s.BytesPerTriple = float64(s.EstimatedBytes) / float64(s.Triples)
	}

	s.Predicates = make([]PredicateSpace, 0, len(perPred))
	for pred, bytes := range perPred {
		ps := PredicateSpace{Predicate: pred.Value(), TotalBytes: bytes}
		if pc, ok := m.predCards[pred]; ok {
			ps.Triples = pc.triples
		}
		if s.TotalStringBytes > 0 {
			ps.Share = float64(bytes) / float64(s.TotalStringBytes)
		}
		s.Predicates = append(s.Predicates, ps)
	}
	sort.Slice(s.Predicates, func(i, j int) bool {
		if s.Predicates[i].TotalBytes != s.Predicates[j].TotalBytes {
			return s.Predicates[i].TotalBytes > s.Predicates[j].TotalBytes
		}
		return s.Predicates[i].Predicate < s.Predicates[j].Predicate
	})

	s.Interning = m.interningLocked(s)
	return s
}

// interningLocked projects the store's cost under the ROADMAP item-1
// dictionary design: distinct terms interned to uint32 ids, triples as
// [3]uint32, and each index as per-key uint32 postings lists.
func (m *Manager) interningLocked(s SpaceStats) InterningProjection {
	p := InterningProjection{
		DictionaryBytes: s.UniqueStringBytes +
			int64(s.UniqueTerms)*(stringHeaderBytes+4) + // id -> term table
			mapBytes(s.UniqueTerms, stringHeaderBytes+4), // term -> id lookup
		TripleBytes: int64(s.Triples) * 12,
	}
	for _, ix := range s.Indexes {
		p.IndexBytes += int64(ix.Entries)*4 + int64(ix.Buckets)*sliceHeaderBytes
	}
	p.ProjectedBytes = p.DictionaryBytes + p.TripleBytes + p.IndexBytes
	p.SavedBytes = s.EstimatedBytes - p.ProjectedBytes
	if p.ProjectedBytes > 0 {
		p.Factor = float64(s.EstimatedBytes) / float64(p.ProjectedBytes)
	}
	return p
}

// String renders the headline numbers in one line; the JSON form carries
// the full breakdown.
func (s SpaceStats) String() string {
	return fmt.Sprintf("triples=%d est_bytes=%d bytes/triple=%.1f string_bytes=%d unique_bytes=%d dup=%.2fx index_overhead=%d interning_projected=%d (%.1fx smaller)",
		s.Triples, s.EstimatedBytes, s.BytesPerTriple,
		s.TotalStringBytes, s.UniqueStringBytes, s.DuplicationRatio,
		s.IndexOverheadBytes, s.Interning.ProjectedBytes, s.Interning.Factor)
}
