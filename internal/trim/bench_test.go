package trim

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

func benchTriple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://t/s%d", i)),
		rdf.IRI(fmt.Sprintf("http://t/p%d", i%16)),
		rdf.Integer(int64(i%256)),
	)
}

func BenchmarkCreate(b *testing.B) {
	m := NewManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Create(benchTriple(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCreateDuplicate(b *testing.B) {
	m := NewManager()
	t := benchTriple(0)
	m.Create(t)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Create(t)
	}
}

func BenchmarkSelectBySubject(b *testing.B) {
	m := NewManager()
	for i := 0; i < 10000; i++ {
		m.Create(benchTriple(i))
	}
	pat := rdf.P(rdf.IRI("http://t/s5000"), rdf.Zero, rdf.Zero)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Select(pat)) != 1 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkHas(b *testing.B) {
	m := NewManager()
	for i := 0; i < 10000; i++ {
		m.Create(benchTriple(i))
	}
	t := benchTriple(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Has(t) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkBatchApply(b *testing.B) {
	m := NewManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := m.NewBatch()
		for j := 0; j < 5; j++ {
			batch.Create(benchTriple(i*5 + j))
		}
		if err := batch.Apply(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkView(b *testing.B) {
	m, _ := buildTree(2, 10) // ~2k nodes
	root := rdf.IRI("http://t/root")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.View(root).Len() == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkPath(b *testing.B) {
	m, _ := buildTree(2, 10)
	root := rdf.IRI("http://t/root")
	contains := rdf.IRI("http://t/contains")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Path([]rdf.Term{root}, contains, contains, contains)) != 8 {
			b.Fatal("wrong path result")
		}
	}
}

func BenchmarkCompactCreate(b *testing.B) {
	c := NewCompactStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Create(benchTriple(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompactSelect(b *testing.B) {
	c := NewCompactStore()
	for i := 0; i < 10000; i++ {
		c.Create(benchTriple(i))
	}
	pat := rdf.P(rdf.IRI("http://t/s5000"), rdf.Zero, rdf.Zero)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Select(pat)) != 1 {
			b.Fatal("wrong result")
		}
	}
}
