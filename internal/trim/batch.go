package trim

import (
	"fmt"
	"time"

	"repro/internal/rdf"
)

// Batch stages a group of creates and removes to be applied atomically.
// DMI operations that touch several triples (Create_Bundle writes the name,
// position, size, and containment triples together) use a batch so readers
// never observe a half-created object.
//
// A Batch is single-use: after Apply or Discard it rejects further staging.
type Batch struct {
	m       *Manager
	creates []rdf.Triple
	removes []rdf.Triple
	// removePatterns are expanded at apply time under the lock, so the batch
	// removes exactly what exists at commit, not at staging.
	removePatterns []rdf.Pattern
	done           bool
}

// NewBatch starts an empty batch against the manager.
func (m *Manager) NewBatch() *Batch {
	return &Batch{m: m}
}

// Create stages a triple insertion. Validation happens immediately so the
// caller learns about malformed triples at staging time.
//
// slimvet:noobs staging only; Apply is the commit point and records
// trim.batch.* for the whole batch.
func (b *Batch) Create(t rdf.Triple) error {
	if b.done {
		return fmt.Errorf("trim: batch already finished")
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trim: batch create: %w", err)
	}
	b.creates = append(b.creates, t)
	return nil
}

// Remove stages an exact-triple removal.
//
// slimvet:noobs staging only; Apply records trim.batch.*.
func (b *Batch) Remove(t rdf.Triple) error {
	if b.done {
		return fmt.Errorf("trim: batch already finished")
	}
	b.removes = append(b.removes, t)
	return nil
}

// RemoveMatching stages removal of all triples matching the pattern at
// apply time.
//
// slimvet:noobs staging only; Apply records trim.batch.*.
func (b *Batch) RemoveMatching(p rdf.Pattern) error {
	if b.done {
		return fmt.Errorf("trim: batch already finished")
	}
	b.removePatterns = append(b.removePatterns, p)
	return nil
}

// Len returns the number of staged operations (patterns count as one each).
func (b *Batch) Len() int {
	return len(b.creates) + len(b.removes) + len(b.removePatterns)
}

// Apply executes all staged operations under one lock acquisition. Removes
// run before creates so a batch can replace a property value. On any error
// every already-applied operation is rolled back and the store is unchanged.
func (b *Batch) Apply() error {
	if b.done {
		return fmt.Errorf("trim: batch already finished")
	}
	b.done = true
	start := time.Now()
	defer mBatchNS.ObserveSince(start)
	mBatchTotal.Inc()
	mBatchOps.Observe(int64(b.Len()))

	m := b.m
	m.mu.Lock()
	err := b.applyLocked(m)
	// Observer delivery happens after unlock; on rollback the staged
	// events include the inverse operations, so observers still see a
	// sequence that nets out to no change.
	events, targets, seqTargets := m.drainLocked()
	m.mu.Unlock()
	m.deliver(targets, seqTargets, events)
	return err
}

// applyLocked runs the staged operations under the caller-held store lock.
func (b *Batch) applyLocked(m *Manager) error {
	// Undo log: inverse operations in reverse order.
	type undo struct {
		t     rdf.Triple
		readd bool // true: re-add removed triple; false: remove added triple
	}
	var log []undo
	rollback := func() {
		for i := len(log) - 1; i >= 0; i-- {
			u := log[i]
			if u.readd {
				// Re-adding a previously stored triple cannot fail validation.
				if _, err := m.createLocked(u.t); err != nil {
					panic(fmt.Sprintf("trim: rollback re-add failed: %v", err))
				}
			} else {
				m.removeLocked(u.t)
			}
		}
	}

	for _, p := range b.removePatterns {
		for _, t := range m.selectLocked(p) {
			if m.removeLocked(t) {
				log = append(log, undo{t: t, readd: true})
			}
		}
	}
	for _, t := range b.removes {
		if m.removeLocked(t) {
			log = append(log, undo{t: t, readd: true})
		}
	}
	for _, t := range b.creates {
		added, err := m.createLocked(t)
		if err != nil {
			rollback()
			return fmt.Errorf("trim: batch apply: %w", err)
		}
		if added {
			log = append(log, undo{t: t, readd: false})
		}
	}
	return nil
}

// Discard abandons the batch without touching the store.
func (b *Batch) Discard() {
	b.done = true
	b.creates, b.removes, b.removePatterns = nil, nil, nil
}
