package trim

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/rdf"
)

// JSON Lines persistence: the portability format (docs/ROBUSTNESS.md
// "Durability backends"). One triple per line means exports can be
// streamed, cut with line tools, concatenated, and re-imported — the
// `trimq export` / `trimq import` interchange path.

// ExportJSONL streams the store's triples to w as JSON Lines in
// deterministic (sorted) order.
func (m *Manager) ExportJSONL(w io.Writer) error {
	mExportTotal.Inc()
	if err := rdf.WriteJSONL(w, m.Snapshot()); err != nil {
		return fmt.Errorf("trim: export jsonl: %w", err)
	}
	return nil
}

// ImportJSONL replaces the store contents with the triples read from r.
//
// slimvet:noobs counts trim.persist.import.total directly below.
func (m *Manager) ImportJSONL(r io.Reader) error {
	mImportTotal.Inc()
	g, err := rdf.ReadJSONL(r)
	if err != nil {
		return fmt.Errorf("trim: import jsonl: %w", err)
	}
	m.Replace(g)
	return nil
}

// SaveJSONL persists the store as a JSON Lines file through the same
// atomic temp-file+rename path as SaveFile (no .bak sibling: JSONL is an
// interchange format, not the recovery-bearing snapshot).
func (m *Manager) SaveJSONL(path string) (err error) {
	mSaveTotal.Inc()
	defer func() {
		if err != nil {
			mSaveErrors.Inc()
		}
	}()
	mExportTotal.Inc()
	var buf bytes.Buffer
	if err := rdf.WriteJSONL(&buf, m.Snapshot()); err != nil {
		return fmt.Errorf("trim: save %s: %w", path, err)
	}
	return saveAtomic(path, buf.Bytes(), false)
}

// LoadJSONL replaces the store contents with the triples in a JSON Lines
// file.
func (m *Manager) LoadJSONL(path string) error {
	mLoadFileTotal.Inc()
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trim: load: %w", err)
	}
	defer f.Close()
	mImportTotal.Inc()
	g, err := rdf.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("trim: load %s: %w", path, err)
	}
	m.Replace(g)
	return nil
}
