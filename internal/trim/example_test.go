package trim_test

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/trim"
)

// The paper's TRIM operations (§4.4): create, query by selection, view.
func Example() {
	m := trim.NewManager()
	bundle := rdf.IRI("http://slim.example.org/instance#Bundle-000001")
	scrap := rdf.IRI("http://slim.example.org/instance#Scrap-000001")
	content := rdf.IRI("http://slim.example.org/slimpad#bundleContent")
	name := rdf.IRI("http://slim.example.org/slimpad#scrapName")

	m.Create(rdf.T(bundle, content, scrap))
	m.Create(rdf.T(scrap, name, rdf.String("K+ 4.1")))

	// Selection query: fix the subject, leave the rest wild.
	for _, t := range m.Select(rdf.P(scrap, rdf.Zero, rdf.Zero)) {
		fmt.Println(t.Object.Value())
	}
	// View: everything reachable from the bundle.
	fmt.Println("view size:", m.View(bundle).Len())
	// Output:
	// K+ 4.1
	// view size: 2
}

func ExampleManager_Path() {
	m := trim.NewManager()
	pad := rdf.IRI("http://x/pad")
	root := rdf.IRI("http://x/root")
	s1 := rdf.IRI("http://x/s1")
	rootBundle := rdf.IRI("http://x/rootBundle")
	content := rdf.IRI("http://x/content")
	m.Create(rdf.T(pad, rootBundle, root))
	m.Create(rdf.T(root, content, s1))

	for _, term := range m.Path([]rdf.Term{pad}, rootBundle, content) {
		fmt.Println(term.Value())
	}
	// Output:
	// http://x/s1
}

func ExampleBatch() {
	m := trim.NewManager()
	b := m.NewBatch()
	id := rdf.IRI("http://x/bundle")
	b.Create(rdf.T(id, rdf.RDFType, rdf.IRI("http://x/Bundle")))
	b.Create(rdf.T(id, rdf.IRI("http://x/name"), rdf.String("Rounds")))
	if err := b.Apply(); err != nil {
		fmt.Println("apply failed:", err)
		return
	}
	fmt.Println("triples:", m.Len())
	// Output:
	// triples: 2
}
