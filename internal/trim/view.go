package trim

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// View computes the paper's "simple view" (§4.4): "A view is specified by
// selecting a resource (such as a Bundle id), where all triples that can be
// reached from this resource are returned (e.g., all triples representing
// nested Bundles within the given Bundle along with their Scraps)."
//
// Reachability follows subject→object edges: starting from root, every
// triple whose subject is a reached resource is in the view, and resource
// objects of those triples are reached in turn. The result is a fresh graph.
func (m *Manager) View(root rdf.Term) *rdf.Graph {
	return m.ViewFiltered(root, nil)
}

// ViewFiltered is View restricted to edges the filter accepts. A nil filter
// accepts every triple. Filters let DMIs exclude cross-links (e.g., marks
// shared between scraps) from a containment view.
func (m *Manager) ViewFiltered(root rdf.Term, filter func(rdf.Triple) bool) *rdf.Graph {
	start := time.Now()
	m.mu.RLock()
	out, e := m.viewExplainLocked(root, filter)
	m.mu.RUnlock()
	d := time.Since(start)
	mViewNS.Observe(int64(d))
	mViewTotal.Inc()
	recordViewShape()
	if obs.DefaultSlowOps.Slow(d) {
		e.Query = root.String()
		e.WallNS = int64(d)
		e.journal(start)
	}
	return out
}

// viewExplainLocked is the reachability walk behind View, ViewFiltered,
// and ViewExplain; Candidates counts every edge examined.
func (m *Manager) viewExplainLocked(root rdf.Term, filter func(rdf.Triple) bool) (*rdf.Graph, Explain) {
	e := Explain{
		Op:         "view",
		Index:      indexSubject.String(),
		Observers:  len(m.observers),
		StoreSize:  m.graph.Len(),
		Generation: m.generation,
	}
	out := rdf.NewGraph()
	if !root.IsResource() {
		return out, e
	}
	visited := map[rdf.Term]struct{}{root: {}}
	frontier := []rdf.Term{root}
	for len(frontier) > 0 {
		node := frontier[0]
		frontier = frontier[1:]
		for t := range m.bySubject[node] {
			e.Candidates++
			if filter != nil && !filter(t) {
				continue
			}
			// Triples coming out of the graph are already validated.
			if _, err := out.Add(t); err != nil {
				// Unreachable by construction; skip defensively.
				continue
			}
			obj := t.Object
			if !obj.IsResource() {
				continue
			}
			if _, seen := visited[obj]; seen {
				continue
			}
			visited[obj] = struct{}{}
			frontier = append(frontier, obj)
		}
	}
	e.Matched = out.Len()
	return out, e
}

// Reachable returns the set of resources reachable from root (including
// root itself when it is a resource), in deterministic order.
func (m *Manager) Reachable(root rdf.Term) []rdf.Term {
	g := m.View(root)
	seen := map[rdf.Term]struct{}{}
	if root.IsResource() {
		seen[root] = struct{}{}
	}
	g.Each(func(t rdf.Triple) bool {
		seen[t.Subject] = struct{}{}
		if t.Object.IsResource() {
			seen[t.Object] = struct{}{}
		}
		return true
	})
	out := make([]rdf.Term, 0, len(seen))
	for term := range seen {
		out = append(out, term)
	}
	sortTerms(out)
	return out
}

// ReachesFrom reports whether target is reachable from root following
// subject→object edges.
func (m *Manager) ReachesFrom(root, target rdf.Term) bool {
	if root == target {
		return root.IsResource()
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	visited := map[rdf.Term]struct{}{root: {}}
	frontier := []rdf.Term{root}
	for len(frontier) > 0 {
		node := frontier[0]
		frontier = frontier[1:]
		for t := range m.bySubject[node] {
			obj := t.Object
			if obj == target {
				return true
			}
			if !obj.IsResource() {
				continue
			}
			if _, seen := visited[obj]; seen {
				continue
			}
			visited[obj] = struct{}{}
			frontier = append(frontier, obj)
		}
	}
	return false
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
