package trim

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

// buildTree creates a bundle-like containment tree of the given fanout and
// depth under root, returning the manager and the number of nodes.
func buildTree(fanout, depth int) (*Manager, int) {
	m := NewManager()
	nodes := 1
	var grow func(parent string, d int)
	grow = func(parent string, d int) {
		if d == 0 {
			return
		}
		for i := 0; i < fanout; i++ {
			child := fmt.Sprintf("%s.%d", parent, i)
			m.Create(link(parent, "contains", child))
			m.Create(tr(child, "name", "node "+child))
			nodes++
			grow(child, d-1)
		}
	}
	grow("root", depth)
	return m, nodes
}

func TestViewReachability(t *testing.T) {
	m, _ := buildTree(2, 3) // 1 + 2 + 4 + 8 = 15 nodes
	view := m.View(rdf.IRI("http://t/root"))
	// Every non-root node has a contains edge and a name triple: 14*2 = 28.
	if view.Len() != 28 {
		t.Fatalf("view has %d triples, want 28", view.Len())
	}
	// A subtree view is smaller: 6 contains edges plus 7 name triples
	// (root.0's own name triple is included since root.0 is the view root).
	sub := m.View(rdf.IRI("http://t/root.0"))
	if sub.Len() != 13 {
		t.Fatalf("subtree view has %d triples, want 13", sub.Len())
	}
}

func TestViewExcludesUnreachable(t *testing.T) {
	m := NewManager()
	m.Create(link("a", "contains", "b"))
	m.Create(tr("b", "name", "B"))
	m.Create(tr("island", "name", "unreachable"))
	view := m.View(rdf.IRI("http://t/a"))
	if view.Len() != 2 {
		t.Fatalf("view = %d triples, want 2", view.Len())
	}
	for _, x := range view.All() {
		if x.Subject == rdf.IRI("http://t/island") {
			t.Fatal("unreachable triple included")
		}
	}
}

func TestViewHandlesCycles(t *testing.T) {
	m := NewManager()
	m.Create(link("a", "next", "b"))
	m.Create(link("b", "next", "c"))
	m.Create(link("c", "next", "a")) // cycle
	view := m.View(rdf.IRI("http://t/a"))
	if view.Len() != 3 {
		t.Fatalf("cyclic view = %d triples, want 3", view.Len())
	}
}

func TestViewOfLiteralRootIsEmpty(t *testing.T) {
	m := NewManager()
	m.Create(tr("a", "p", "v"))
	if v := m.View(rdf.String("v")); v.Len() != 0 {
		t.Fatal("view from literal root should be empty")
	}
	if v := m.View(rdf.Zero); v.Len() != 0 {
		t.Fatal("view from zero root should be empty")
	}
}

func TestViewDoesNotTraverseThroughLiterals(t *testing.T) {
	m := NewManager()
	// "b" as a literal is not the same node as resource b.
	m.Create(tr("a", "label", "b"))
	m.Create(tr("b", "name", "B"))
	view := m.View(rdf.IRI("http://t/a"))
	if view.Len() != 1 {
		t.Fatalf("view = %d triples, want 1 (literals are not traversed)", view.Len())
	}
}

func TestViewFiltered(t *testing.T) {
	m := NewManager()
	m.Create(link("a", "contains", "b"))
	m.Create(link("a", "marks", "m1"))
	m.Create(tr("m1", "addr", "X"))
	contains := rdf.IRI("http://t/contains")
	view := m.ViewFiltered(rdf.IRI("http://t/a"), func(x rdf.Triple) bool {
		return x.Predicate == contains
	})
	if view.Len() != 1 {
		t.Fatalf("filtered view = %d triples, want 1", view.Len())
	}
}

func TestReachable(t *testing.T) {
	m, _ := buildTree(2, 2) // root + 2 + 4 = 7 nodes
	got := m.Reachable(rdf.IRI("http://t/root"))
	if len(got) != 7 {
		t.Fatalf("Reachable = %d nodes, want 7", len(got))
	}
	// Sorted and includes root.
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatal("Reachable output not sorted")
		}
	}
}

func TestReachesFrom(t *testing.T) {
	m := NewManager()
	m.Create(link("a", "p", "b"))
	m.Create(link("b", "p", "c"))
	m.Create(link("x", "p", "y"))
	a, c, y := rdf.IRI("http://t/a"), rdf.IRI("http://t/c"), rdf.IRI("http://t/y")
	if !m.ReachesFrom(a, c) {
		t.Error("a should reach c")
	}
	if m.ReachesFrom(a, y) {
		t.Error("a should not reach y")
	}
	if !m.ReachesFrom(a, a) {
		t.Error("a should reach itself")
	}
	if m.ReachesFrom(rdf.String("lit"), rdf.String("lit")) {
		t.Error("literal roots are never reachable")
	}
}

// Property: every triple in a view has a subject reachable from the root,
// and the view is a subset of the full store.
func TestViewSoundnessProperty(t *testing.T) {
	f := func(edges []uint8) bool {
		m := NewManager()
		for _, e := range edges {
			m.Create(link(
				fmt.Sprintf("n%d", e%8),
				"p",
				fmt.Sprintf("n%d", (e/8)%8),
			))
		}
		root := rdf.IRI("http://t/n0")
		view := m.View(root)
		reach := map[rdf.Term]bool{}
		for _, x := range m.Reachable(root) {
			reach[x] = true
		}
		ok := true
		view.Each(func(x rdf.Triple) bool {
			if !m.Has(x) || !reach[x.Subject] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
