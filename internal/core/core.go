// Package core wires the generic components of the superimposed-application
// architecture (Fig. 5): base applications, the Mark Manager, and the SLIM
// store. A superimposed application (SLIMPad, the annotation baseline, the
// examples) builds on a System; the package also implements the three
// viewing styles of Fig. 6.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/base"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/slim"
)

// System is the assembled architecture: the base-application registry, the
// Mark Manager routing marks to base applications, and the SLIM store
// holding superimposed information. The three are deliberately independent
// — the paper's claim that the architecture "allowed parallel development
// and extension of the Mark Manager, SLIM Store, and SLIMPad" (§6) rests on
// these seams.
type System struct {
	// Base registers the running base applications by scheme.
	Base *base.Registry
	// Marks stores and resolves marks.
	Marks *mark.Manager
	// Store holds superimposed information as triples.
	Store *slim.Store
}

// NewSystem assembles an empty system.
func NewSystem() *System {
	return &System{
		Base:  base.NewRegistry(),
		Marks: mark.NewManager(),
		Store: slim.NewStore(),
	}
}

// RegisterBase adds a base application to both the registry and the mark
// manager (as an AppModule). This is the entire integration surface for a
// new base information type.
func (s *System) RegisterBase(app base.Application) error {
	if err := s.Base.Register(app); err != nil {
		return err
	}
	if err := s.Marks.RegisterApplication(app); err != nil {
		s.Base.Unregister(app.Scheme())
		return err
	}
	return nil
}

// ViewingStyle is one of the three user-interaction arrangements of Fig. 6.
type ViewingStyle int

const (
	// Simultaneous: superimposed and base applications are both visible;
	// resolving a mark drives the base viewer while the superimposed
	// window stays up (SLIMPad's normal operation).
	Simultaneous ViewingStyle = iota
	// EnhancedBase: the base application is enhanced to show superimposed
	// information in its own window (the Third Voice arrangement).
	EnhancedBase
	// Independent: the base application is hidden; the superimposed
	// application shows base content in place.
	Independent
)

// String names the style.
func (v ViewingStyle) String() string {
	switch v {
	case Simultaneous:
		return "simultaneous"
	case EnhancedBase:
		return "enhanced-base"
	case Independent:
		return "independent"
	default:
		return fmt.Sprintf("ViewingStyle(%d)", int(v))
	}
}

// View is the result of viewing a mark under some style.
type View struct {
	Style ViewingStyle
	// Element is the resolved base element.
	Element base.Element
	// BaseViewerMoved reports whether the base application's viewer state
	// changed (true only for Simultaneous viewing).
	BaseViewerMoved bool
	// Overlay lists, for EnhancedBase viewing, every stored mark into the
	// same document — the superimposed items an enhanced viewer would
	// render over the base content.
	Overlay []mark.Mark
	// Degraded reports that the base application was unreachable and the
	// element was served from the mark's cached excerpt (ViewMarkCtx only;
	// see the degradation ladder in docs/ROBUSTNESS.md).
	Degraded bool
}

// ViewMark resolves the mark under the given viewing style. Each call is
// one orchestration span ("core.view") in the obs trace ring — the mark
// resolution it triggers shows up as the nested mark.* metrics — plus a
// per-style counter and latency histogram.
func (s *System) ViewMark(style ViewingStyle, markID string) (v View, err error) {
	start := time.Now()
	sp := obs.Trace("core.view", style.String()+" "+markID)
	defer func() {
		sp.FinishErr(err)
		obs.H(obs.NameCoreViewNS).ObserveSince(start)
		obs.C(fmt.Sprintf(obs.FmtCoreViewTotal, style)).Inc()
		if err != nil {
			obs.C(obs.NameCoreViewErrors).Inc()
		}
	}()
	switch style {
	case Simultaneous:
		el, err := s.Marks.Resolve(markID)
		if err != nil {
			return View{}, err
		}
		return View{Style: style, Element: el, BaseViewerMoved: true}, nil
	case Independent:
		el, err := s.Marks.ResolveWith(markID, mark.ResolveInPlace)
		if err != nil {
			return View{}, err
		}
		return View{Style: style, Element: el}, nil
	case EnhancedBase:
		el, err := s.Marks.Resolve(markID)
		if err != nil {
			return View{}, err
		}
		overlay := s.MarksInto(el.Address.Scheme, el.Address.File)
		return View{Style: style, Element: el, BaseViewerMoved: true, Overlay: overlay}, nil
	default:
		return View{}, fmt.Errorf("core: unknown viewing style %v", style)
	}
}

// ViewMarkCtx is the failure-aware ViewMark: transient base-application
// faults are retried per the Mark Manager's policy, and when resolution
// fails permanently the view is served from the mark's cached excerpt with
// View.Degraded set (and BaseViewerMoved false — no viewer was driven).
// Marks with neither a live referent nor a cached excerpt fail with the
// classified error; they land in the manager's quarantine for Doctor.
func (s *System) ViewMarkCtx(ctx context.Context, style ViewingStyle, markID string) (v View, err error) {
	start := time.Now()
	ctx, sp := obs.StartCtx(ctx, "core.view", style.String()+" "+markID)
	defer func() {
		sp.FinishErr(err)
		obs.H(obs.NameCoreViewNS).ObserveSince(start)
		obs.C(fmt.Sprintf(obs.FmtCoreViewTotal, style)).Inc()
		if err != nil {
			obs.C(obs.NameCoreViewErrors).Inc()
		}
	}()
	switch style {
	case Simultaneous, Independent, EnhancedBase:
	default:
		return View{}, fmt.Errorf("core: unknown viewing style %v", style)
	}
	resolver := mark.ResolveContext
	if style == Independent {
		resolver = mark.ResolveInPlace
	}
	el, outcome, err := s.Marks.ResolveDegradedWith(ctx, markID, resolver)
	if err != nil {
		return View{}, err
	}
	v = View{Style: style, Element: el, Degraded: outcome == mark.OutcomeCached}
	if !v.Degraded && style != Independent {
		v.BaseViewerMoved = true
	}
	if style == EnhancedBase {
		v.Overlay = s.MarksInto(el.Address.Scheme, el.Address.File)
	}
	if v.Degraded {
		obs.C(obs.NameCoreViewDegraded).Inc()
	}
	return v, nil
}

// Doctor runs the Mark Manager's health check over every stored mark: the
// system-level entry point behind `markctl doctor`.
func (s *System) Doctor(ctx context.Context) mark.HealthReport {
	ctx, sp := obs.StartCtx(ctx, "core.doctor", "")
	defer sp.Finish()
	return s.Marks.Doctor(ctx)
}

// MarksInto lists every stored mark addressing the given document, sorted
// by id — the overlay an enhanced base viewer renders (Fig. 6, middle).
func (s *System) MarksInto(scheme, file string) []mark.Mark {
	var out []mark.Mark
	for _, m := range s.Marks.Marks() {
		if m.Address.Scheme == scheme && m.Address.File == file {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Save persists marks and superimposed information into one XML file.
func (s *System) Save(path string) (err error) {
	sp := obs.Trace("core.save", path)
	defer func() { sp.FinishErr(err) }()
	if err := s.Marks.SaveTo(s.Store.Trim()); err != nil {
		return err
	}
	return s.Store.SaveFile(path)
}

// Load restores the store and marks from an XML file.
func (s *System) Load(path string) (err error) {
	sp := obs.Trace("core.load", path)
	defer func() { sp.FinishErr(err) }()
	if err := s.Store.LoadFile(path); err != nil {
		return err
	}
	return s.Marks.LoadFrom(s.Store.Trim())
}
