package core

import (
	"path/filepath"
	"testing"

	"repro/internal/base/spreadsheet"
	"repro/internal/base/xmldoc"
	"repro/internal/mark"
)

func newSystem(t *testing.T) (*System, *spreadsheet.App, *xmldoc.App) {
	t.Helper()
	s := NewSystem()
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	sheets.AddWorkbook(w)
	xmlApp := xmldoc.NewApp()
	if _, err := xmlApp.LoadString("lab.xml", "<report><result code=\"K\">4.1</result></report>"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBase(sheets); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBase(xmlApp); err != nil {
		t.Fatal(err)
	}
	return s, sheets, xmlApp
}

func markFurosemide(t *testing.T, s *System, sheets *spreadsheet.App) mark.Mark {
	t.Helper()
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := s.Marks.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterBaseBothRegistries(t *testing.T) {
	s, _, _ := newSystem(t)
	if _, ok := s.Base.Lookup(spreadsheet.Scheme); !ok {
		t.Error("base registry missing scheme")
	}
	schemes := s.Marks.Schemes()
	if len(schemes) != 2 {
		t.Errorf("mark schemes = %v", schemes)
	}
	// A duplicate registration rolls back cleanly.
	if err := s.RegisterBase(spreadsheet.NewApp()); err == nil {
		t.Error("duplicate base accepted")
	}
}

func TestRegisterBaseRollsBackOnMarkConflict(t *testing.T) {
	s := NewSystem()
	app := spreadsheet.NewApp()
	// Pre-register the scheme in the mark manager only, to force the
	// second half of RegisterBase to fail.
	if err := s.Marks.RegisterApplication(app); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBase(spreadsheet.NewApp()); err == nil {
		t.Fatal("conflicting register succeeded")
	}
	if _, ok := s.Base.Lookup(spreadsheet.Scheme); ok {
		t.Fatal("base registry not rolled back")
	}
}

func TestSimultaneousViewing(t *testing.T) {
	s, sheets, _ := newSystem(t)
	m := markFurosemide(t, s, sheets)
	// The base viewer wanders off.
	r, _ := spreadsheet.ParseRange("B3")
	sheets.SelectRange("Meds", r)
	v, err := s.ViewMark(Simultaneous, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Element.Content != "Furosemide" || !v.BaseViewerMoved {
		t.Fatalf("view = %+v", v)
	}
	sel, _ := sheets.CurrentSelection()
	if sel.Path != "Meds!A2" {
		t.Error("simultaneous viewing did not drive the base viewer")
	}
}

func TestIndependentViewing(t *testing.T) {
	s, sheets, _ := newSystem(t)
	m := markFurosemide(t, s, sheets)
	r, _ := spreadsheet.ParseRange("B3")
	sheets.SelectRange("Meds", r)
	v, err := s.ViewMark(Independent, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Element.Content != "Furosemide" || v.BaseViewerMoved {
		t.Fatalf("view = %+v", v)
	}
	sel, _ := sheets.CurrentSelection()
	if sel.Path != "Meds!B3" {
		t.Error("independent viewing moved the base viewer")
	}
}

func TestEnhancedBaseViewing(t *testing.T) {
	s, sheets, _ := newSystem(t)
	m1 := markFurosemide(t, s, sheets)
	// A second mark in the same document.
	r, _ := spreadsheet.ParseRange("A3")
	sheets.SelectRange("Meds", r)
	m2, err := s.Marks.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.ViewMark(EnhancedBase, m1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Overlay) != 2 {
		t.Fatalf("overlay = %v", v.Overlay)
	}
	if v.Overlay[0].ID != m1.ID || v.Overlay[1].ID != m2.ID {
		t.Fatalf("overlay order = %v", v.Overlay)
	}
}

func TestViewErrors(t *testing.T) {
	s, sheets, _ := newSystem(t)
	m := markFurosemide(t, s, sheets)
	if _, err := s.ViewMark(ViewingStyle(42), m.ID); err == nil {
		t.Error("unknown style accepted")
	}
	for _, style := range []ViewingStyle{Simultaneous, Independent, EnhancedBase} {
		if _, err := s.ViewMark(style, "ghost"); err == nil {
			t.Errorf("%v view of ghost mark succeeded", style)
		}
	}
}

func TestViewingStyleNames(t *testing.T) {
	if Simultaneous.String() != "simultaneous" ||
		EnhancedBase.String() != "enhanced-base" ||
		Independent.String() != "independent" {
		t.Error("style names wrong")
	}
	if ViewingStyle(9).String() == "" {
		t.Error("unknown style name empty")
	}
}

func TestMarksIntoFiltersByDocument(t *testing.T) {
	s, sheets, xmlApp := newSystem(t)
	markFurosemide(t, s, sheets)
	xmlApp.Open("lab.xml")
	xmlApp.SelectExpr("/report/result")
	if _, err := s.Marks.CreateFromSelection(xmldoc.Scheme); err != nil {
		t.Fatal(err)
	}
	into := s.MarksInto(spreadsheet.Scheme, "meds.xls")
	if len(into) != 1 {
		t.Fatalf("MarksInto = %d", len(into))
	}
	if len(s.MarksInto("xml", "lab.xml")) != 1 {
		t.Fatal("xml overlay wrong")
	}
	if len(s.MarksInto("xml", "other.xml")) != 0 {
		t.Fatal("overlay leaked across documents")
	}
}

func TestSystemSaveLoad(t *testing.T) {
	s, sheets, _ := newSystem(t)
	m := markFurosemide(t, s, sheets)
	path := filepath.Join(t.TempDir(), "system.xml")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// A new system sharing the same base applications.
	s2 := NewSystem()
	if err := s2.RegisterBase(sheets); err != nil {
		t.Fatal(err)
	}
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	v, err := s2.ViewMark(Simultaneous, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Element.Content != "Furosemide" {
		t.Fatalf("reloaded view = %+v", v)
	}
	if err := s2.Load(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}
