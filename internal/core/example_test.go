package core_test

import (
	"fmt"

	"repro/internal/base/spreadsheet"
	"repro/internal/core"
)

// Assembling the Fig. 5 architecture and viewing a mark under the three
// Fig. 6 styles.
func Example() {
	sys := core.NewSystem()
	sheets := spreadsheet.NewApp()
	wb := spreadsheet.NewWorkbook("meds.xls")
	wb.LoadCSV("Meds", "Drug\nFurosemide\n")
	sheets.AddWorkbook(wb)
	sys.RegisterBase(sheets)

	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	sheets.SelectRange("Meds", r)
	m, _ := sys.Marks.CreateFromSelection(spreadsheet.Scheme)

	for _, style := range []core.ViewingStyle{core.Simultaneous, core.Independent} {
		v, _ := sys.ViewMark(style, m.ID)
		fmt.Printf("%s: %s (viewer moved: %v)\n", style, v.Element.Content, v.BaseViewerMoved)
	}
	// Output:
	// simultaneous: Furosemide (viewer moved: true)
	// independent: Furosemide (viewer moved: false)
}
