package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/base/spreadsheet"
	"repro/internal/faultbase"
	"repro/internal/mark"
)

// newFaultSystem assembles a system whose spreadsheet app is wrapped in a
// fault injector, with one mark on the Furosemide cell.
func newFaultSystem(t *testing.T) (*System, *faultbase.App, mark.Mark) {
	t.Helper()
	s := NewSystem()
	s.Marks.SetRetryPolicy(mark.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
	sheets := spreadsheet.NewApp()
	w := spreadsheet.NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose\nFurosemide,40mg\nInsulin,5u\n"); err != nil {
		t.Fatal(err)
	}
	sheets.AddWorkbook(w)
	fa := faultbase.Wrap(sheets)
	if err := s.RegisterBase(fa); err != nil {
		t.Fatal(err)
	}
	sheets.Open("meds.xls")
	r, _ := spreadsheet.ParseRange("A2")
	if err := sheets.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	m, err := s.Marks.CreateFromSelection(spreadsheet.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	return s, fa, m
}

func TestViewMarkCtxRetriesTransient(t *testing.T) {
	s, fa, m := newFaultSystem(t)
	fa.FailN(faultbase.OpGoTo, nil, 2)
	v, err := s.ViewMarkCtx(context.Background(), Simultaneous, m.ID)
	if err != nil {
		t.Fatalf("ViewMarkCtx = %v", err)
	}
	if v.Degraded || !v.BaseViewerMoved || v.Element.Content != "Furosemide" {
		t.Errorf("view = %+v", v)
	}
}

func TestViewMarkCtxDegradesToExcerpt(t *testing.T) {
	s, fa, m := newFaultSystem(t)
	fa.DropDocument("meds.xls")
	v, err := s.ViewMarkCtx(context.Background(), Simultaneous, m.ID)
	if err != nil {
		t.Fatalf("ViewMarkCtx = %v", err)
	}
	if !v.Degraded {
		t.Fatal("view not marked degraded")
	}
	if v.BaseViewerMoved {
		t.Error("BaseViewerMoved on a cached view")
	}
	if v.Element.Content != "Furosemide" {
		t.Errorf("cached content = %q", v.Element.Content)
	}
	// The mark is quarantined for the doctor.
	report := s.Doctor(context.Background())
	if report.Degraded != 1 {
		t.Errorf("doctor report = %+v", report)
	}
	if q := s.Marks.Quarantined(); len(q) != 1 || q[0].ID != m.ID {
		t.Errorf("quarantine = %+v", q)
	}
}

func TestViewMarkCtxIndependentUsesInPlace(t *testing.T) {
	s, fa, m := newFaultSystem(t)
	v, err := s.ViewMarkCtx(context.Background(), Independent, m.ID)
	if err != nil {
		t.Fatalf("ViewMarkCtx = %v", err)
	}
	if v.BaseViewerMoved {
		t.Error("independent view drove the base viewer")
	}
	if got := fa.Calls(faultbase.OpGoTo); got != 0 {
		t.Errorf("GoTo calls = %d for in-place view", got)
	}
	if fa.Calls(faultbase.OpExtractContent) == 0 {
		t.Error("in-place view did not extract content")
	}
	if _, err := s.ViewMarkCtx(context.Background(), ViewingStyle(99), m.ID); err == nil {
		t.Error("unknown style accepted")
	}
}

func TestViewMarkCtxDanglingFails(t *testing.T) {
	s, fa, m := newFaultSystem(t)
	// Strip the excerpt so no ladder rung can serve the mark.
	stripped := m
	stripped.Excerpt = ""
	s.Marks.Remove(m.ID)
	if err := s.Marks.Add(stripped); err != nil {
		t.Fatal(err)
	}
	fa.DropDocument("meds.xls")
	if _, err := s.ViewMarkCtx(context.Background(), Simultaneous, m.ID); !errors.Is(err, mark.ErrDangling) {
		t.Fatalf("err = %v, want ErrDangling", err)
	}
	report := s.Doctor(context.Background())
	if report.Dangling != 1 {
		t.Errorf("doctor report = %+v", report)
	}
}
