package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/durable"
)

// openCollect opens the log at path collecting every replayed payload.
func openCollect(t *testing.T, path string) (*Log, Recovery, [][]byte) {
	t.Helper()
	var got [][]byte
	l, rec, err := Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, rec, got := openCollect(t, path)
	if rec.Records != 0 || rec.GoodBytes != 0 || rec.Torn() || len(got) != 0 {
		t.Fatalf("fresh log recovered %+v, %d payloads", rec, len(got))
	}
	want := [][]byte{[]byte("first"), []byte(""), []byte("third record, longer than the others")}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if l.Records() != 3 {
		t.Fatalf("Records = %d, want 3", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec, got := openCollect(t, path)
	defer l2.Close()
	if rec.Records != 3 || rec.Torn() {
		t.Fatalf("recovered %+v, want 3 intact records", rec)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The reopened log appends after the existing records.
	if err := l2.Append([]byte("fourth")); err != nil {
		t.Fatal(err)
	}
	if l2.Records() != 4 {
		t.Fatalf("Records after reopen+append = %d, want 4", l2.Records())
	}
}

// TestTornTailTruncatedAtEveryOffset cuts the file at every possible byte
// length: recovery must surface exactly the records that fit completely
// and truncate the rest, never erroring and never inventing data.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.wal")
	l, _, _ := openCollect(t, master)
	payloads := [][]byte{[]byte("alpha"), []byte("bravo-bravo"), []byte("charlie")}
	var boundaries []int64 // GoodBytes after each record
	off := int64(0)
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		off += int64(headerSize + len(p))
		boundaries = append(boundaries, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(full); n++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", n))
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		// Records whose frames fit entirely within n bytes survive.
		wantRecords := 0
		for _, b := range boundaries {
			if int64(n) >= b {
				wantRecords++
			}
		}
		l, rec, got := openCollect(t, path)
		if rec.Records != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d", n, rec.Records, wantRecords)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut at %d: payload %d = %q, want %q", n, i, got[i], payloads[i])
			}
		}
		wantGood := int64(0)
		if wantRecords > 0 {
			wantGood = boundaries[wantRecords-1]
		}
		if rec.GoodBytes != wantGood || rec.TornBytes != int64(n)-wantGood {
			t.Fatalf("cut at %d: recovery %+v, want good=%d torn=%d", n, rec, wantGood, int64(n)-wantGood)
		}
		// The torn tail is physically truncated: the file now holds exactly
		// the intact prefix, so a second open sees a clean tail.
		if fi, err := os.Stat(path); err != nil || fi.Size() != wantGood {
			t.Fatalf("cut at %d: file is %d bytes after recovery, want %d (err %v)", n, fi.Size(), wantGood, err)
		}
		l.Close()
	}
}

// TestBitFlipEveryByte flips each byte of a two-record log in turn. The
// CRC (or the length bound) must stop the scan at or before the damaged
// record: replayed payloads are always a clean prefix, never corrupt data.
func TestBitFlipEveryByte(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.wal")
	l, _, _ := openCollect(t, master)
	payloads := [][]byte{[]byte("stable-first-record"), []byte("second-record")}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	rec1End := headerSize + len(payloads[0])

	for i := range full {
		for _, bit := range []byte{0x01, 0x80} {
			flipped := append([]byte(nil), full...)
			flipped[i] ^= bit
			path := filepath.Join(dir, "flip.wal")
			if err := os.WriteFile(path, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			l, rec, got := openCollect(t, path)
			l.Close()
			// Damage in record k's frame must drop record k and everything
			// after; earlier records must survive byte-identical.
			maxSurvive := 2
			if i < rec1End {
				maxSurvive = 0
			} else {
				maxSurvive = 1
			}
			if rec.Records > maxSurvive {
				t.Fatalf("flip byte %d (bit %#x): %d records survived, max %d", i, bit, rec.Records, maxSurvive)
			}
			for k := range got {
				if !bytes.Equal(got[k], payloads[k]) {
					t.Fatalf("flip byte %d (bit %#x): payload %d corrupted to %q", i, bit, k, got[k])
				}
			}
		}
	}
}

func TestCheckReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")

	// Missing file: intact and empty.
	rec, err := Check(path)
	if err != nil || rec.Records != 0 || rec.Torn() {
		t.Fatalf("Check(missing) = %+v, %v", rec, err)
	}

	l, _, _ := openCollect(t, path)
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-second-record.
	torn := full[:len(full)-2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = Check(path)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rec.Records != 1 || !rec.Torn() {
		t.Fatalf("Check on torn log = %+v, want 1 record + torn tail", rec)
	}
	// Check must not repair: the file is untouched.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn) {
		t.Fatal("Check modified the file")
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, _, _ := openCollect(t, path)
	defer l.Close()
	if err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Records() != 0 || l.Size() != 0 {
		t.Fatalf("after Reset: %d records, %d bytes", l.Records(), l.Size())
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + len("fresh")); fi.Size() != want {
		t.Fatalf("file is %d bytes after Reset+Append, want %d", fi.Size(), want)
	}
}

func TestMaxRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, _, _ := openCollect(t, path)
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if l.Records() != 0 {
		t.Fatalf("oversized record counted: %d", l.Records())
	}
}

func TestReplayCallbackErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, _, _ := openCollect(t, path)
	if err := l.Append([]byte("poison")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := Open(path, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open with failing replay = %v, want %v", err, boom)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, _, _ := openCollect(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestFaultHooksCoverWALStages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.wal")
	l, _, _ := openCollect(t, path)
	defer l.Close()
	if err := l.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		stage durable.Stage
		op    func() error
	}{
		{durable.StageWALAppend, func() error { return l.Append([]byte("x")) }},
		{durable.StageWALSync, l.Sync},
		{durable.StageWALTruncate, l.Reset},
	} {
		fail := tc.stage
		prev := durable.SetFault(func(s durable.Stage, _ string) error {
			if s == fail {
				return fmt.Errorf("injected at %s", s)
			}
			return nil
		})
		err := tc.op()
		durable.SetFault(prev)
		if err == nil {
			t.Fatalf("%s survived injected fault", tc.stage)
		}
	}
	// The log is still usable and holds only the pre-fault record.
	if l.Records() != 1 {
		t.Fatalf("log has %d records after injected faults, want 1", l.Records())
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after faults cleared: %v", err)
	}
}
