// Package wal implements a minimal append-only write-ahead log of opaque
// records with CRC-32-framed, length-prefixed frames. It is the physical
// layer of TRIM's WAL durability backend (internal/trim/wal.go) but knows
// nothing about triples: records are byte slices.
//
// Frame layout (little-endian):
//
//	[4B payload length][4B CRC-32 (IEEE) of payload][payload]
//
// Recovery is prefix-consistent: Open scans frames from the start and
// stops at the first incomplete, oversized, or checksum-failing frame —
// everything before it replays, everything from it on is a torn tail that
// Open truncates away. A crash mid-append therefore loses at most the
// unacknowledged suffix; it never yields a half-record to the caller.
//
// All write-path steps run the shared durability fault hook
// (internal/durable): wal-append before each frame write, wal-sync before
// each fsync, wal-truncate before a post-compaction reset.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/durable"
)

// headerSize is the per-record frame overhead: 4 bytes little-endian
// payload length followed by 4 bytes CRC-32 (IEEE) of the payload.
const headerSize = 8

// MaxRecord bounds a single record's payload. A declared length beyond it
// is treated as frame corruption (torn tail), not an allocation request —
// this is what keeps a bit flip in a length field from looking like a
// 4 GiB record.
const MaxRecord = 64 << 20

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Recovery describes what Open (or Check) found in an existing log file.
type Recovery struct {
	// Records is the number of intact records scanned.
	Records int
	// GoodBytes is the byte length of the intact frame prefix.
	GoodBytes int64
	// TornBytes is the number of trailing bytes after the last intact
	// frame (zero for a clean log). Open truncates them; Check only
	// reports them.
	TornBytes int64
}

// Torn reports whether the scan found a torn or corrupt tail.
func (r Recovery) Torn() bool { return r.TornBytes > 0 }

// Log is an append-only record log. The zero value is not usable; call
// Open. All methods are safe for concurrent use.
type Log struct {
	path string

	mu      sync.Mutex
	f       *os.File // guarded by mu
	size    int64    // current byte length of the intact log; guarded by mu
	records int64    // records in the log (replayed + appended); guarded by mu
	closed  bool     // guarded by mu
}

// Open opens (creating if absent) the log at path, verifies the existing
// frames, truncates any torn tail, and calls replay for each intact record
// payload in append order. A replay error aborts the open. The returned
// Recovery reports what the scan found, including the torn bytes removed.
//
// The payload slice passed to replay is only valid during the call.
func Open(path string, replay func(payload []byte) error) (*Log, Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	rec, err := scan(f, replay)
	if err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if rec.Torn() {
		// Drop the torn tail so future appends extend an intact prefix
		// instead of burying good frames behind garbage.
		if err := f.Truncate(rec.GoodBytes); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("wal: open %s: truncating torn tail: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("wal: open %s: %w", path, err)
		}
	}
	if _, err := f.Seek(rec.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Log{path: path, f: f, size: rec.GoodBytes, records: int64(rec.Records)}, rec, nil
}

// Check scans the log at path read-only and reports its frame integrity
// without truncating or replaying anything. A missing file is an empty,
// intact log.
func Check(path string) (Recovery, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Recovery{}, nil
		}
		return Recovery{}, fmt.Errorf("wal: check %s: %w", path, err)
	}
	defer f.Close()
	rec, err := scan(f, nil)
	if err != nil {
		return rec, fmt.Errorf("wal: check %s: %w", path, err)
	}
	return rec, nil
}

// scan reads frames from the start of f, calling replay (when non-nil) for
// each intact payload. It stops — without error — at the first torn or
// corrupt frame and reports it via Recovery; only I/O and replay errors
// are returned.
func scan(f *os.File, replay func([]byte) error) (Recovery, error) {
	fi, err := f.Stat()
	if err != nil {
		return Recovery{}, err
	}
	total := fi.Size()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return Recovery{}, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var rec Recovery
	var header [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn header
			}
			return rec, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if int64(length) > MaxRecord || int64(length) > total-rec.GoodBytes-headerSize {
			break // corrupt length field or frame past end of file
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn payload
			}
			return rec, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or torn rewrite
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return rec, fmt.Errorf("replaying record %d: %w", rec.Records, err)
			}
		}
		rec.Records++
		rec.GoodBytes += headerSize + int64(length)
	}
	rec.TornBytes = total - rec.GoodBytes
	return rec, nil
}

// Append writes one framed record. The write is buffered by the OS until
// Sync; callers that need durability acknowledge batches with Append...
// then one Sync (group commit).
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: append %s: record of %d bytes exceeds MaxRecord", l.path, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append %s: %w", l.path, ErrClosed)
	}
	if err := durable.FaultAt(durable.StageWALAppend, l.path); err != nil {
		return err
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	l.records++
	return nil
}

// Sync fsyncs the log: every record appended before the call is durable
// once it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync %s: %w", l.path, ErrClosed)
	}
	if err := durable.FaultAt(durable.StageWALSync, l.path); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	return nil
}

// Reset truncates the log to empty — the post-compaction step, once the
// snapshot that supersedes the logged records is durable.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: reset %s: %w", l.path, ErrClosed)
	}
	if err := durable.FaultAt(durable.StageWALTruncate, l.path); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	l.size = 0
	l.records = 0
	return nil
}

// Size returns the byte length of the intact log.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the log (replayed at open plus
// appended since).
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: close %s: %w", l.path, err)
	}
	return nil
}
