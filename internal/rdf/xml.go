package rdf

import (
	"encoding/xml"
	"fmt"
	"io"
)

// The paper (§4.4) persists the triple store "through XML files". This file
// implements that serialization. The format is a flat triple list (simpler
// and more regular than full RDF/XML striping, but in its spirit): each
// <triple> element carries subject, predicate, and object children whose
// kind attribute distinguishes IRIs, blank nodes, and literals.

const xmlFormatVersion = "1"

type xmlStore struct {
	XMLName xml.Name    `xml:"slimstore"`
	Version string      `xml:"version,attr"`
	Triples []xmlTriple `xml:"triple"`
}

type xmlTriple struct {
	Subject   xmlTerm `xml:"subject"`
	Predicate xmlTerm `xml:"predicate"`
	Object    xmlTerm `xml:"object"`
}

type xmlTerm struct {
	Kind     string `xml:"kind,attr"`
	Datatype string `xml:"datatype,attr,omitempty"`
	Value    string `xml:",chardata"`
}

func termToXML(t Term) xmlTerm {
	x := xmlTerm{Value: t.Value()}
	switch t.Kind() {
	case KindIRI:
		x.Kind = "iri"
	case KindBlank:
		x.Kind = "blank"
	case KindLiteral:
		x.Kind = "literal"
		if dt := t.Datatype(); dt != XSDString {
			x.Datatype = dt
		}
	}
	return x
}

func termFromXML(x xmlTerm) (Term, error) {
	switch x.Kind {
	case "iri":
		return IRI(x.Value), nil
	case "blank":
		return Blank(x.Value), nil
	case "literal":
		if x.Datatype == "" {
			return String(x.Value), nil
		}
		return TypedLiteral(x.Value, x.Datatype), nil
	default:
		return Zero, fmt.Errorf("rdf: unknown term kind %q in XML store", x.Kind)
	}
}

// WriteXML serializes the graph in the SLIM XML persistence format, in
// deterministic order.
func WriteXML(w io.Writer, g *Graph) error {
	store := xmlStore{Version: xmlFormatVersion}
	for _, t := range g.All() {
		store.Triples = append(store.Triples, xmlTriple{
			Subject:   termToXML(t.Subject),
			Predicate: termToXML(t.Predicate),
			Object:    termToXML(t.Object),
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(store); err != nil {
		return fmt.Errorf("rdf: encoding XML store: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a graph from the SLIM XML persistence format.
func ReadXML(r io.Reader) (*Graph, error) {
	var store xmlStore
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&store); err != nil {
		return nil, fmt.Errorf("rdf: decoding XML store: %w", err)
	}
	if store.Version != xmlFormatVersion {
		return nil, fmt.Errorf("rdf: unsupported XML store version %q", store.Version)
	}
	g := NewGraph()
	for i, xt := range store.Triples {
		s, err := termFromXML(xt.Subject)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d subject: %w", i, err)
		}
		p, err := termFromXML(xt.Predicate)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d predicate: %w", i, err)
		}
		o, err := termFromXML(xt.Object)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d object: %w", i, err)
		}
		if _, err := g.Add(T(s, p, o)); err != nil {
			return nil, fmt.Errorf("rdf: triple %d: %w", i, err)
		}
	}
	return g, nil
}
