package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(T(IRI("http://x/s"), IRI("http://x/p"), String("plain")))
	g.Add(T(Blank("b1"), IRI("http://x/p"), Integer(42)))
	g.Add(T(IRI("http://x/s"), IRI("http://x/q"), IRI("http://x/o")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/r"), Blank("b2")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/t"), String("line\nbreak\tand \"quotes\" and \\slash")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/u"), Bool(true)))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip lost data:\noriginal:\n%v\nback:\n%v", g.All(), back.All())
	}
}

func TestNTriplesCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
<http://x/s> <http://x/p> "v" .

# another
<http://x/s> <http://x/p> <http://x/o> .
`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("parsed %d triples, want 2", g.Len())
	}
}

func TestNTriplesParseErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> "v"`,           // missing dot
		`<http://x/s> <http://x/p> .`,             // missing object
		`"lit" <http://x/p> "v" .`,                // literal subject
		`<http://x/s> _:b "v" .`,                  // blank predicate
		`<http://x/s> <http://x/p> "unterminated`, // unterminated literal
		`<http://x/s <http://x/p> "v" .`,          // unterminated IRI
		`<http://x/s> <http://x/p> "v" . extra`,   // trailing garbage
		`<http://x/s> <http://x/p> "bad\qesc" .`,  // unknown escape
		`_: <http://x/p> "v" .`,                   // empty blank label
		`%bogus`,                                  // nonsense
	}
	for _, src := range bad {
		if _, err := ReadNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", src)
		}
	}
}

func TestNTriplesUnicodeEscape(t *testing.T) {
	src := `<http://x/s> <http://x/p> "café" .`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	trs := g.All()
	if len(trs) != 1 || trs[0].Object.Value() != "café" {
		t.Fatalf("unicode escape parsed as %q", trs[0].Object.Value())
	}
}

func TestNTriplesIRIEscaping(t *testing.T) {
	// IRIs containing forbidden characters must survive a round trip.
	g := NewGraph()
	g.Add(T(IRI("http://x/weird>char"), IRI("http://x/p"), String("v")))
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), " ", 2)[0]
	if inner := first[1 : len(first)-1]; strings.Contains(inner, ">") {
		t.Fatal("unescaped '>' inside serialized IRI")
	}
	back, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("IRI with special characters did not round trip")
	}
}

func TestNTriplesDeterministicOutput(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(mkTriple(i))
	}
	var a, b bytes.Buffer
	if err := WriteNTriples(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteNTriples is not deterministic")
	}
}

// Property: any literal string round-trips through serialization.
func TestNTriplesLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		g := NewGraph()
		g.Add(T(IRI("http://x/s"), IRI("http://x/p"), String(s)))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		back, err := ReadNTriples(&buf)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
