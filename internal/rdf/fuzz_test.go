package rdf

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzReadNTriples: the parser must never panic; any graph it accepts must
// re-serialize and re-parse to an equal graph.
func FuzzReadNTriples(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		`<http://x/s> <http://x/p> "v" .`,
		`_:b <http://x/p> <http://x/o> .`,
		`<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://x/s> <http://x/p> "esc\n\"\\" .`,
		`<http://x/s> <http://x/p> "café" .`,
		`malformed line`,
		`<s> <p> "unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadNTriples(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("serialize accepted graph: %v", err)
		}
		back, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("reparse own output: %v\noutput:\n%s", err, buf.String())
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzTermLiteralRoundTrip: any literal value survives both serializations.
func FuzzTermLiteralRoundTrip(f *testing.F) {
	f.Add("plain")
	f.Add("with \"quotes\" and \\slashes\\")
	f.Add("tabs\tand\nnewlines\r")
	f.Add("unicode: café ☃")
	f.Fuzz(func(t *testing.T, v string) {
		g := NewGraph()
		if _, err := g.Add(T(IRI("http://f/s"), IRI("http://f/p"), String(v))); err != nil {
			if errors.Is(err, ErrInvalidUTF8) && !utf8.ValidString(v) {
				return // correctly rejected
			}
			t.Fatal(err)
		}
		var nt bytes.Buffer
		if err := WriteNTriples(&nt, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadNTriples(&nt)
		if err != nil || !g.Equal(back) {
			t.Fatalf("n-triples round trip failed for %q: %v", v, err)
		}
	})
}
