package rdf

import (
	"errors"
	"fmt"
	"unicode/utf8"
)

// Triple is one statement: Subject (the paper's "resource"), Predicate (the
// paper's "property"), Object (the paper's "value").
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is shorthand for constructing a triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// Errors reported by Triple.Validate.
var (
	ErrSubjectNotResource   = errors.New("rdf: triple subject must be an IRI or blank node")
	ErrPredicateNotIRI      = errors.New("rdf: triple predicate must be an IRI")
	ErrObjectZero           = errors.New("rdf: triple object must not be the zero term")
	ErrEmptyTermValue       = errors.New("rdf: triple term has empty value")
	ErrLiteralSubject       = errors.New("rdf: triple subject must not be a literal")
	ErrBlankPredicate       = errors.New("rdf: triple predicate must not be a blank node")
	ErrLiteralPredicateTerm = errors.New("rdf: triple predicate must not be a literal")
	// ErrInvalidUTF8: term values must be valid UTF-8 (both serializations
	// are UTF-8 text; invalid bytes would silently mutate to U+FFFD on the
	// way out and break round trips).
	ErrInvalidUTF8 = errors.New("rdf: term value is not valid UTF-8")
)

// Validate reports whether the triple is well formed: the subject is a
// resource, the predicate is an IRI, and the object is any non-zero term.
func (t Triple) Validate() error {
	switch t.Subject.Kind() {
	case KindIRI, KindBlank:
		if t.Subject.Value() == "" {
			return fmt.Errorf("%w (subject)", ErrEmptyTermValue)
		}
	case KindLiteral:
		return ErrLiteralSubject
	default:
		return ErrSubjectNotResource
	}
	switch t.Predicate.Kind() {
	case KindIRI:
		if t.Predicate.Value() == "" {
			return fmt.Errorf("%w (predicate)", ErrEmptyTermValue)
		}
	case KindBlank:
		return ErrBlankPredicate
	case KindLiteral:
		return ErrLiteralPredicateTerm
	default:
		return ErrPredicateNotIRI
	}
	if t.Object.IsZero() {
		return ErrObjectZero
	}
	if t.Object.Value() == "" && t.Object.Kind() != KindLiteral {
		return fmt.Errorf("%w (object)", ErrEmptyTermValue)
	}
	for pos, term := range map[string]Term{"subject": t.Subject, "predicate": t.Predicate, "object": t.Object} {
		if !utf8.ValidString(term.Value()) || !utf8.ValidString(term.Datatype()) {
			return fmt.Errorf("%w (%s)", ErrInvalidUTF8, pos)
		}
	}
	return nil
}

// String renders the triple in N-Triples syntax without the trailing dot.
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Predicate.String() + " " + t.Object.String()
}

// Compare orders triples subject-major, then predicate, then object.
func (t Triple) Compare(u Triple) int {
	if c := t.Subject.Compare(u.Subject); c != 0 {
		return c
	}
	if c := t.Predicate.Compare(u.Predicate); c != 0 {
		return c
	}
	return t.Object.Compare(u.Object)
}

// Pattern is a triple template for selection queries: any zero Term matches
// every term in that position. The paper (§4.4): "Query is specified by
// selection, where one or more of the triple fields is fixed, and the result
// is a set of triples."
type Pattern struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// P is shorthand for constructing a pattern; pass rdf.Zero for wildcards.
func P(s, p, o Term) Pattern { return Pattern{Subject: s, Predicate: p, Object: o} }

// Matches reports whether the triple satisfies the pattern.
func (p Pattern) Matches(t Triple) bool {
	if !p.Subject.IsZero() && p.Subject != t.Subject {
		return false
	}
	if !p.Predicate.IsZero() && p.Predicate != t.Predicate {
		return false
	}
	if !p.Object.IsZero() && p.Object != t.Object {
		return false
	}
	return true
}

// Bound reports how many fields of the pattern are fixed.
func (p Pattern) Bound() int {
	n := 0
	if !p.Subject.IsZero() {
		n++
	}
	if !p.Predicate.IsZero() {
		n++
	}
	if !p.Object.IsZero() {
		n++
	}
	return n
}

// String renders the pattern with "?" for wildcards.
func (p Pattern) String() string {
	f := func(t Term) string {
		if t.IsZero() {
			return "?"
		}
		return t.String()
	}
	return f(p.Subject) + " " + f(p.Predicate) + " " + f(p.Object)
}
