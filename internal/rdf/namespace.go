package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespaces used throughout the SLIM stack. The paper represents the
// metamodel in RDF Schema [5]; rdf: and rdfs: get their W3C IRIs, the SLIM
// vocabularies get project-local IRIs.
const (
	NSRDF  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS = "http://www.w3.org/2000/01/rdf-schema#"
	// NSSLIM names the metamodel vocabulary (constructs, connectors, ...).
	NSSLIM = "http://slim.example.org/metamodel#"
	// NSMark names the mark-management vocabulary.
	NSMark = "http://slim.example.org/mark#"
	// NSPad names the Bundle-Scrap vocabulary of SLIMPad.
	NSPad = "http://slim.example.org/slimpad#"
	// NSInst is the default namespace for instance identifiers.
	NSInst = "http://slim.example.org/instance#"
)

// Common RDF/RDFS property and class IRIs.
var (
	RDFType         = IRI(NSRDF + "type")
	RDFSClass       = IRI(NSRDFS + "Class")
	RDFSSubClassOf  = IRI(NSRDFS + "subClassOf")
	RDFSLabel       = IRI(NSRDFS + "label")
	RDFSComment     = IRI(NSRDFS + "comment")
	RDFSDomain      = IRI(NSRDFS + "domain")
	RDFSRange       = IRI(NSRDFS + "range")
	RDFProperty     = IRI(NSRDF + "Property")
	RDFSSubProperty = IRI(NSRDFS + "subPropertyOf")
	RDFSLiteral     = IRI(NSRDFS + "Literal")
	RDFSResource    = IRI(NSRDFS + "Resource")
)

// PrefixMap maps short prefixes to namespace IRIs, for compact display and
// parsing of qualified names in the cmd tools.
type PrefixMap struct {
	byPrefix map[string]string
	byNS     []nsEntry // longest-prefix-wins shrink table
}

type nsEntry struct {
	ns     string
	prefix string
}

// NewPrefixMap returns a prefix map preloaded with the standard bindings:
// rdf, rdfs, slim, mark, pad, inst, xsd.
func NewPrefixMap() *PrefixMap {
	pm := &PrefixMap{byPrefix: make(map[string]string)}
	pm.Bind("rdf", NSRDF)
	pm.Bind("rdfs", NSRDFS)
	pm.Bind("slim", NSSLIM)
	pm.Bind("mark", NSMark)
	pm.Bind("pad", NSPad)
	pm.Bind("inst", NSInst)
	pm.Bind("xsd", "http://www.w3.org/2001/XMLSchema#")
	return pm
}

// Bind associates prefix with namespace, replacing any prior binding of the
// same prefix.
func (pm *PrefixMap) Bind(prefix, ns string) {
	if old, ok := pm.byPrefix[prefix]; ok {
		for i := range pm.byNS {
			if pm.byNS[i].ns == old && pm.byNS[i].prefix == prefix {
				pm.byNS = append(pm.byNS[:i], pm.byNS[i+1:]...)
				break
			}
		}
	}
	pm.byPrefix[prefix] = ns
	pm.byNS = append(pm.byNS, nsEntry{ns: ns, prefix: prefix})
	sort.Slice(pm.byNS, func(i, j int) bool { return len(pm.byNS[i].ns) > len(pm.byNS[j].ns) })
}

// Expand turns "prefix:local" into a full IRI. Input already containing
// "://" is returned unchanged. Unknown prefixes are an error.
func (pm *PrefixMap) Expand(qname string) (string, error) {
	if strings.Contains(qname, "://") {
		return qname, nil
	}
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is neither a full IRI nor a prefix:local qualified name", qname)
	}
	prefix, local := qname[:i], qname[i+1:]
	ns, ok := pm.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unknown namespace prefix %q", prefix)
	}
	return ns + local, nil
}

// Shrink turns a full IRI into "prefix:local" when a bound namespace is a
// prefix of it; otherwise it returns the IRI unchanged.
func (pm *PrefixMap) Shrink(iri string) string {
	for _, e := range pm.byNS {
		if strings.HasPrefix(iri, e.ns) {
			return e.prefix + ":" + iri[len(e.ns):]
		}
	}
	return iri
}

// ShrinkTerm renders a term compactly: IRIs are shrunk; blanks and literals
// use their N-Triples form.
func (pm *PrefixMap) ShrinkTerm(t Term) string {
	if t.Kind() == KindIRI {
		return pm.Shrink(t.Value())
	}
	return t.String()
}
