package rdf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSONL is the portability serialization (docs/ROBUSTNESS.md "Durability
// backends"): one JSON object per line, one triple per object, in
// deterministic (sorted) order. Unlike the XML snapshot it needs no
// surrounding document, so streams can be produced, concatenated, cut with
// line tools, and imported incrementally — the moss-style export/import
// shape for backups and interchange with non-SLIM tooling.
//
// Line form:
//
//	{"s":{"kind":"iri","value":"http://x/s"},
//	 "p":{"kind":"iri","value":"http://x/p"},
//	 "o":{"kind":"literal","value":"42","datatype":"...#integer"}}
//
// A plain string literal omits the datatype field (xsd:string is the
// canonical implied type, matching TypedLiteral's normalization).

// jsonTerm is the JSONL wire form of one term.
type jsonTerm struct {
	Kind     string `json:"kind"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
}

// jsonTriple is the JSONL wire form of one triple.
type jsonTriple struct {
	S jsonTerm `json:"s"`
	P jsonTerm `json:"p"`
	O jsonTerm `json:"o"`
}

func termToJSON(t Term) jsonTerm {
	jt := jsonTerm{Kind: t.Kind().String(), Value: t.Value()}
	if t.IsLiteral() && t.Datatype() != XSDString {
		jt.Datatype = t.Datatype()
	}
	return jt
}

func termFromJSON(jt jsonTerm) (Term, error) {
	switch jt.Kind {
	case "iri":
		return IRI(jt.Value), nil
	case "blank":
		return Blank(jt.Value), nil
	case "literal":
		return TypedLiteral(jt.Value, jt.Datatype), nil
	default:
		return Zero, fmt.Errorf("rdf: unknown term kind %q", jt.Kind)
	}
}

// WriteJSONL writes the graph as JSON Lines, one triple per line, in
// deterministic (sorted) order so output is diffable.
func WriteJSONL(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range g.All() {
		if err := enc.Encode(jsonTriple{
			S: termToJSON(t.Subject),
			P: termToJSON(t.Predicate),
			O: termToJSON(t.Object),
		}); err != nil {
			return fmt.Errorf("rdf: writing jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses JSON Lines text into a new graph. Blank lines and
// #-comments are permitted (so exports can carry provenance headers).
// Parsing stops with an error identifying the offending line number.
func ReadJSONL(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var jt jsonTriple
		if err := json.Unmarshal([]byte(line), &jt); err != nil {
			return nil, fmt.Errorf("rdf: jsonl line %d: %w", lineNo, err)
		}
		s, err := termFromJSON(jt.S)
		if err != nil {
			return nil, fmt.Errorf("rdf: jsonl line %d: subject: %w", lineNo, err)
		}
		p, err := termFromJSON(jt.P)
		if err != nil {
			return nil, fmt.Errorf("rdf: jsonl line %d: predicate: %w", lineNo, err)
		}
		o, err := termFromJSON(jt.O)
		if err != nil {
			return nil, fmt.Errorf("rdf: jsonl line %d: object: %w", lineNo, err)
		}
		if _, err := g.Add(T(s, p, o)); err != nil {
			return nil, fmt.Errorf("rdf: jsonl line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading jsonl: %w", err)
	}
	return g, nil
}
