package rdf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	cases := []struct {
		term Term
		kind TermKind
	}{
		{IRI("http://x/a"), KindIRI},
		{Blank("b1"), KindBlank},
		{String("hello"), KindLiteral},
		{Integer(42), KindLiteral},
		{Float(3.5), KindLiteral},
		{Bool(true), KindLiteral},
	}
	for _, c := range cases {
		if c.term.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.term, c.term.Kind(), c.kind)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindBlank.String() != "blank" || KindLiteral.String() != "literal" {
		t.Errorf("kind names wrong: %v %v %v", KindIRI, KindBlank, KindLiteral)
	}
	if got := TermKind(99).String(); got != "TermKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroTerm(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if IRI("x").IsZero() {
		t.Fatal("IRI(x).IsZero() = true")
	}
	var def Term
	if def != Zero {
		t.Fatal("zero value Term != Zero")
	}
}

func TestIsResourceAndLiteral(t *testing.T) {
	if !IRI("a").IsResource() || !Blank("b").IsResource() {
		t.Error("IRI/Blank should be resources")
	}
	if String("l").IsResource() {
		t.Error("literal should not be a resource")
	}
	if !String("l").IsLiteral() || IRI("a").IsLiteral() {
		t.Error("IsLiteral misclassifies")
	}
}

func TestIntegerRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 12345} {
		term := Integer(n)
		got, ok := term.Int()
		if !ok || got != n {
			t.Errorf("Integer(%d).Int() = %d, %v", n, got, ok)
		}
		if term.Datatype() != XSDInteger {
			t.Errorf("Integer(%d) datatype = %q", n, term.Datatype())
		}
	}
	if _, ok := String("abc").Int(); ok {
		t.Error("String.Int() should fail")
	}
	if _, ok := IRI("abc").Int(); ok {
		t.Error("IRI.Int() should fail")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, 1e100, -1e-100} {
		term := Float(f)
		got, ok := term.Num()
		if !ok || got != f {
			t.Errorf("Float(%g).Num() = %g, %v", f, got, ok)
		}
	}
	// Integers also parse as numbers.
	if n, ok := Integer(7).Num(); !ok || n != 7 {
		t.Errorf("Integer(7).Num() = %g, %v", n, ok)
	}
	if _, ok := String("NaN?no").Num(); ok {
		t.Error("non-numeric literal should not parse")
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, b := range []bool{true, false} {
		term := Bool(b)
		got, ok := term.Truth()
		if !ok || got != b {
			t.Errorf("Bool(%v).Truth() = %v, %v", b, got, ok)
		}
	}
	if _, ok := String("maybe").Truth(); ok {
		t.Error("non-boolean literal should not parse")
	}
	if _, ok := Blank("b").Truth(); ok {
		t.Error("blank node should not parse as bool")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("http://x/a"), "<http://x/a>"},
		{Blank("n1"), "_:n1"},
		{String("hi"), `"hi"`},
		{Integer(3), `"3"^^<` + XSDInteger + `>`},
		{String("a\"b"), `"a\"b"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with equality, property-based.
	f := func(a, b string, dty uint8) bool {
		terms := []Term{IRI(a), Blank(a), String(a), IRI(b), TypedLiteral(a, XSDInteger)}
		x := terms[int(dty)%len(terms)]
		y := terms[(int(dty)+1)%len(terms)]
		cxy, cyx := x.Compare(y), y.Compare(x)
		if cxy != -cyx {
			return false
		}
		if (cxy == 0) != (x == y) {
			return false
		}
		return x.Compare(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermCompareOrdering(t *testing.T) {
	// Kind-major order: IRI < Blank < Literal.
	if IRI("z").Compare(Blank("a")) >= 0 {
		t.Error("IRI should sort before Blank")
	}
	if Blank("z").Compare(String("a")) >= 0 {
		t.Error("Blank should sort before Literal")
	}
	if String("a").Compare(String("b")) >= 0 {
		t.Error("literal value ordering broken")
	}
	if String("a").Compare(TypedLiteral("a", XSDInteger)) == 0 {
		t.Error("literals differing in datatype must not compare equal")
	}
}
