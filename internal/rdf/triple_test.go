package rdf

import (
	"errors"
	"testing"
)

func validTriple() Triple {
	return T(IRI("http://x/s"), IRI("http://x/p"), String("o"))
}

func TestTripleValidateOK(t *testing.T) {
	cases := []Triple{
		validTriple(),
		T(Blank("b"), IRI("http://x/p"), IRI("http://x/o")),
		T(IRI("s"), IRI("p"), Blank("o")),
		T(IRI("s"), IRI("p"), String("")), // empty literal is allowed
		T(IRI("s"), IRI("p"), Integer(0)),
	}
	for _, tr := range cases {
		if err := tr.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", tr, err)
		}
	}
}

func TestTripleValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		tr   Triple
		want error
	}{
		{"literal subject", T(String("s"), IRI("p"), String("o")), ErrLiteralSubject},
		{"blank predicate", T(IRI("s"), Blank("p"), String("o")), ErrBlankPredicate},
		{"literal predicate", T(IRI("s"), String("p"), String("o")), ErrLiteralPredicateTerm},
		{"zero object", T(IRI("s"), IRI("p"), Zero), ErrObjectZero},
		{"empty subject", T(IRI(""), IRI("p"), String("o")), ErrEmptyTermValue},
		{"empty predicate", T(IRI("s"), IRI(""), String("o")), ErrEmptyTermValue},
		{"empty blank object", T(IRI("s"), IRI("p"), Blank("")), ErrEmptyTermValue},
		{"invalid utf8 subject", T(IRI("s\xc6"), IRI("p"), String("o")), ErrInvalidUTF8},
		{"invalid utf8 predicate", T(IRI("s"), IRI("p\xff"), String("o")), ErrInvalidUTF8},
		{"invalid utf8 object", T(IRI("s"), IRI("p"), String("o\x80")), ErrInvalidUTF8},
		{"invalid utf8 datatype", T(IRI("s"), IRI("p"), TypedLiteral("o", "d\xfe")), ErrInvalidUTF8},
	}
	for _, c := range cases {
		err := c.tr.Validate()
		if err == nil {
			t.Errorf("%s: Validate = nil, want error", c.name)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestTripleString(t *testing.T) {
	got := validTriple().String()
	want := `<http://x/s> <http://x/p> "o"`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	a := T(IRI("a"), IRI("p"), String("1"))
	b := T(IRI("b"), IRI("p"), String("1"))
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("subject-major compare broken")
	}
	c := T(IRI("a"), IRI("q"), String("1"))
	if a.Compare(c) >= 0 {
		t.Error("predicate tiebreak broken")
	}
	d := T(IRI("a"), IRI("p"), String("2"))
	if a.Compare(d) >= 0 {
		t.Error("object tiebreak broken")
	}
}

func TestPatternMatches(t *testing.T) {
	tr := validTriple()
	cases := []struct {
		p    Pattern
		want bool
	}{
		{P(Zero, Zero, Zero), true},
		{P(IRI("http://x/s"), Zero, Zero), true},
		{P(Zero, IRI("http://x/p"), Zero), true},
		{P(Zero, Zero, String("o")), true},
		{P(IRI("http://x/s"), IRI("http://x/p"), String("o")), true},
		{P(IRI("http://x/other"), Zero, Zero), false},
		{P(Zero, IRI("http://x/other"), Zero), false},
		{P(Zero, Zero, String("other")), false},
		{P(Zero, Zero, IRI("o")), false}, // IRI("o") != String("o")
	}
	for _, c := range cases {
		if got := c.p.Matches(tr); got != c.want {
			t.Errorf("Pattern %v Matches(%v) = %v, want %v", c.p, tr, got, c.want)
		}
	}
}

func TestPatternBound(t *testing.T) {
	cases := []struct {
		p    Pattern
		want int
	}{
		{P(Zero, Zero, Zero), 0},
		{P(IRI("s"), Zero, Zero), 1},
		{P(IRI("s"), IRI("p"), Zero), 2},
		{P(IRI("s"), IRI("p"), String("o")), 3},
		{P(Zero, Zero, String("o")), 1},
	}
	for _, c := range cases {
		if got := c.p.Bound(); got != c.want {
			t.Errorf("Bound(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	got := P(IRI("s"), Zero, String("o")).String()
	want := `<s> ? "o"`
	if got != want {
		t.Errorf("Pattern.String() = %q, want %q", got, want)
	}
}
