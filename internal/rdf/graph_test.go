package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func mkTriple(i int) Triple {
	return T(IRI(fmt.Sprintf("http://x/s%d", i%7)),
		IRI(fmt.Sprintf("http://x/p%d", i%3)),
		String(fmt.Sprintf("v%d", i)))
}

func TestGraphAddRemove(t *testing.T) {
	g := NewGraph()
	tr := validTriple()
	added, err := g.Add(tr)
	if err != nil || !added {
		t.Fatalf("Add = %v, %v", added, err)
	}
	if g.Len() != 1 || !g.Has(tr) {
		t.Fatalf("after Add: Len=%d Has=%v", g.Len(), g.Has(tr))
	}
	// Set semantics.
	added, err = g.Add(tr)
	if err != nil || added {
		t.Fatalf("second Add = %v, %v; want false, nil", added, err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after duplicate Add = %d", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove returned false for present triple")
	}
	if g.Remove(tr) {
		t.Fatal("Remove returned true for absent triple")
	}
	if g.Len() != 0 {
		t.Fatalf("Len after Remove = %d", g.Len())
	}
}

func TestGraphAddInvalid(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add(T(String("s"), IRI("p"), String("o"))); err == nil {
		t.Fatal("Add of invalid triple succeeded")
	}
	if g.Len() != 0 {
		t.Fatal("invalid triple was stored")
	}
}

func TestGraphSelect(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 30; i++ {
		if _, err := g.Add(mkTriple(i)); err != nil {
			t.Fatal(err)
		}
	}
	all := g.Select(Pattern{})
	if len(all) != 30 {
		t.Fatalf("Select(all) = %d triples, want 30", len(all))
	}
	// Deterministic sorted order.
	for i := 1; i < len(all); i++ {
		if all[i-1].Compare(all[i]) >= 0 {
			t.Fatal("Select output not sorted")
		}
	}
	bySubj := g.Select(P(IRI("http://x/s0"), Zero, Zero))
	for _, tr := range bySubj {
		if tr.Subject != IRI("http://x/s0") {
			t.Fatalf("Select by subject returned %v", tr)
		}
	}
	// s0 holds i = 0,7,14,21,28.
	if len(bySubj) != 5 {
		t.Fatalf("Select by subject = %d, want 5", len(bySubj))
	}
	none := g.Select(P(IRI("http://x/absent"), Zero, Zero))
	if len(none) != 0 {
		t.Fatalf("Select absent = %d", len(none))
	}
}

func TestGraphEachEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(mkTriple(i))
	}
	n := 0
	g.Each(func(Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Each visited %d, want 3", n)
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := NewGraph()
	g.Add(validTriple())
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(T(IRI("s2"), IRI("p2"), String("o2")))
	if g.Len() != 1 {
		t.Fatal("mutating clone affected original")
	}
	if g.Equal(c) {
		t.Fatal("Equal true after divergence")
	}
}

func TestGraphMerge(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Add(mkTriple(1))
	a.Add(mkTriple(2))
	b.Add(mkTriple(2))
	b.Add(mkTriple(3))
	n, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Merge added %d, want 1", n)
	}
	if a.Len() != 3 {
		t.Fatalf("Len after merge = %d, want 3", a.Len())
	}
}

func TestGraphDistinctTermSets(t *testing.T) {
	g := NewGraph()
	g.Add(T(IRI("s1"), IRI("p1"), String("o1")))
	g.Add(T(IRI("s1"), IRI("p2"), String("o2")))
	g.Add(T(IRI("s2"), IRI("p1"), IRI("s1")))
	if n := len(g.Subjects()); n != 2 {
		t.Errorf("Subjects = %d, want 2", n)
	}
	if n := len(g.Predicates()); n != 2 {
		t.Errorf("Predicates = %d, want 2", n)
	}
	if n := len(g.Objects()); n != 3 {
		t.Errorf("Objects = %d, want 3", n)
	}
}

func TestGraphEqualDifferentSizes(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Add(mkTriple(1))
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("graphs of different sizes compared equal")
	}
}

// Property: for any set of generated triples, Select(pattern) returns
// exactly the triples that Matches accepts.
func TestGraphSelectMatchesProperty(t *testing.T) {
	f := func(seeds []uint8, sFix, pFix bool) bool {
		g := NewGraph()
		for _, s := range seeds {
			g.Add(mkTriple(int(s)))
		}
		pat := Pattern{}
		if sFix {
			pat.Subject = IRI("http://x/s1")
		}
		if pFix {
			pat.Predicate = IRI("http://x/p1")
		}
		got := g.Select(pat)
		want := 0
		g.Each(func(tr Triple) bool {
			if pat.Matches(tr) {
				want++
			}
			return true
		})
		if len(got) != want {
			return false
		}
		for _, tr := range got {
			if !pat.Matches(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: add then remove restores the prior graph.
func TestGraphAddRemoveInverseProperty(t *testing.T) {
	f := func(seeds []uint8, extra uint8) bool {
		g := NewGraph()
		for _, s := range seeds {
			g.Add(mkTriple(int(s)))
		}
		before := g.Clone()
		tr := T(IRI("http://quickcheck/s"), IRI("http://quickcheck/p"), Integer(int64(extra)))
		g.Add(tr)
		g.Remove(tr)
		return g.Equal(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
