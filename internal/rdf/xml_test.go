package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleGraph() *Graph {
	g := NewGraph()
	g.Add(T(IRI("http://x/s"), IRI("http://x/p"), String("plain")))
	g.Add(T(Blank("b1"), IRI("http://x/p"), Integer(-7)))
	g.Add(T(IRI("http://x/s"), IRI("http://x/q"), IRI("http://x/o")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/r"), Blank("b2")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/t"), String("<angle> & amp \" quote")))
	g.Add(T(IRI("http://x/s"), IRI("http://x/u"), Float(2.5)))
	return g
}

func TestXMLRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteXML(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip lost data:\noriginal:\n%v\nback:\n%v", g.All(), back.All())
	}
}

func TestXMLHasHeaderAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXML(&buf, sampleGraph()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<?xml") {
		t.Error("missing XML declaration")
	}
	if !strings.Contains(out, `<slimstore version="1">`) {
		t.Error("missing versioned root element")
	}
}

func TestXMLBadVersion(t *testing.T) {
	src := `<?xml version="1.0"?><slimstore version="99"></slimstore>`
	if _, err := ReadXML(strings.NewReader(src)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestXMLBadKind(t *testing.T) {
	src := `<?xml version="1.0"?>
<slimstore version="1">
  <triple>
    <subject kind="bogus">x</subject>
    <predicate kind="iri">p</predicate>
    <object kind="literal">v</object>
  </triple>
</slimstore>`
	if _, err := ReadXML(strings.NewReader(src)); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestXMLInvalidTripleRejected(t *testing.T) {
	// A literal subject must be rejected at load, not silently stored.
	src := `<?xml version="1.0"?>
<slimstore version="1">
  <triple>
    <subject kind="literal">x</subject>
    <predicate kind="iri">p</predicate>
    <object kind="literal">v</object>
  </triple>
</slimstore>`
	if _, err := ReadXML(strings.NewReader(src)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestXMLNotXML(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("this is not xml")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestXMLEmptyGraph(t *testing.T) {
	g := NewGraph()
	var buf bytes.Buffer
	if err := WriteXML(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty graph round-tripped to %d triples", back.Len())
	}
}

// Property: literal content with arbitrary printable text survives XML
// persistence (the paper's persistence path for all superimposed data).
func TestXMLLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// encoding/xml cannot represent control characters; the SLIM layer
		// stores user-visible labels, so restrict to valid XML chars.
		clean := strings.Map(func(r rune) rune {
			if r == 0x9 || r == 0xA || r == 0xD || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF) {
				return r
			}
			return -1
		}, s)
		g := NewGraph()
		g.Add(T(IRI("http://x/s"), IRI("http://x/p"), String(clean)))
		var buf bytes.Buffer
		if err := WriteXML(&buf, g); err != nil {
			return false
		}
		back, err := ReadXML(&buf)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
