package rdf

import (
	"sort"
)

// Graph is an in-memory set of triples with set semantics (adding a triple
// twice stores it once). Graph is not safe for concurrent use; the TRIM
// manager wraps it with locking and indexes.
type Graph struct {
	triples map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{triples: make(map[Triple]struct{})}
}

// Add inserts a triple after validating it. It reports whether the triple
// was newly added (false means it was already present).
func (g *Graph) Add(t Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	if _, ok := g.triples[t]; ok {
		return false, nil
	}
	g.triples[t] = struct{}{}
	return true, nil
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.triples[t]; !ok {
		return false
	}
	delete(g.triples, t)
	return true
}

// Has reports whether the graph contains the exact triple.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.triples[t]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Select returns all triples matching the pattern, in deterministic
// (sorted) order.
func (g *Graph) Select(p Pattern) []Triple {
	var out []Triple
	for t := range g.triples {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	SortTriples(out)
	return out
}

// All returns every triple in deterministic order.
func (g *Graph) All() []Triple { return g.Select(Pattern{}) }

// Each calls fn for every triple in unspecified order; fn returning false
// stops the iteration early.
func (g *Graph) Each(fn func(Triple) bool) {
	for t := range g.triples {
		if !fn(t) {
			return
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{triples: make(map[Triple]struct{}, len(g.triples))}
	for t := range g.triples {
		c.triples[t] = struct{}{}
	}
	return c
}

// Merge adds every triple of other into g, returning how many were new.
func (g *Graph) Merge(other *Graph) (int, error) {
	added := 0
	// Deterministic order so a validation error is stable.
	for _, t := range other.All() {
		ok, err := g.Add(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Equal reports whether both graphs contain exactly the same triples.
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for t := range g.triples {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// Subjects returns the distinct subjects appearing in the graph, sorted.
func (g *Graph) Subjects() []Term {
	seen := make(map[Term]struct{})
	for t := range g.triples {
		seen[t.Subject] = struct{}{}
	}
	return sortedTerms(seen)
}

// Predicates returns the distinct predicates appearing in the graph, sorted.
func (g *Graph) Predicates() []Term {
	seen := make(map[Term]struct{})
	for t := range g.triples {
		seen[t.Predicate] = struct{}{}
	}
	return sortedTerms(seen)
}

// Objects returns the distinct objects appearing in the graph, sorted.
func (g *Graph) Objects() []Term {
	seen := make(map[Term]struct{})
	for t := range g.triples {
		seen[t.Object] = struct{}{}
	}
	return sortedTerms(seen)
}

func sortedTerms(set map[Term]struct{}) []Term {
	out := make([]Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// SortTriples sorts triples in subject-major order, in place.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
