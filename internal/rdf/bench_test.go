package rdf

import (
	"bytes"
	"fmt"
	"testing"
)

func benchGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.Add(T(
			IRI(fmt.Sprintf("http://b/s%d", i)),
			IRI(fmt.Sprintf("http://b/p%d", i%8)),
			String(fmt.Sprintf("value %d with some text", i)),
		))
	}
	return g
}

func BenchmarkGraphAdd(b *testing.B) {
	g := NewGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(T(IRI(fmt.Sprintf("http://b/s%d", i)), IRI("http://b/p"), Integer(int64(i))))
	}
}

func BenchmarkWriteNTriples(b *testing.B) {
	g := benchGraph(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadNTriples(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, benchGraph(1000)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadNTriples(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteXML(b *testing.B) {
	g := benchGraph(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteXML(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadXML(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteXML(&buf, benchGraph(1000)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadXML(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternMatches(b *testing.B) {
	t := T(IRI("http://b/s"), IRI("http://b/p"), String("v"))
	p := P(IRI("http://b/s"), Zero, Zero)
	for i := 0; i < b.N; i++ {
		if !p.Matches(t) {
			b.Fatal("no match")
		}
	}
}
