// Package rdf implements the triple data model used by the SLIM store.
//
// The paper (§4.3) represents superimposed model, schema, and instance data
// uniformly as RDF triples — "a triple is composed of a property, a resource,
// and a value" — and serializes them in XML for interoperability between
// superimposed applications. This package provides the terms (IRIs, blank
// nodes, literals), triples, graphs, and two serializations: N-Triples (line
// oriented, for diffing and tests) and an RDF/XML-style format (the paper's
// persistence syntax).
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind int

const (
	// KindIRI identifies a resource by IRI.
	KindIRI TermKind = iota
	// KindBlank identifies a local, unnamed resource.
	KindBlank
	// KindLiteral is a data value, optionally typed.
	KindLiteral
)

// String returns the kind name.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is one position of a triple: an IRI, a blank node, or a literal.
// Terms are immutable values; equality is structural.
type Term struct {
	kind  TermKind
	value string // IRI text, blank label, or literal lexical form
	dtype string // literal datatype IRI; empty means plain string
}

// Zero is the zero Term. It is an empty IRI and is not valid in a triple;
// query code uses it as "any".
var Zero Term

// IRI returns an IRI term. The text is not validated beyond being non-empty
// when placed into a triple; the store treats IRIs as opaque identifiers,
// matching the paper's use of mark ids and construct ids as plain names.
func IRI(iri string) Term { return Term{kind: KindIRI, value: iri} }

// Blank returns a blank-node term with the given local label.
func Blank(label string) Term { return Term{kind: KindBlank, value: label} }

// String returns a plain (untyped) string literal term.
func String(s string) Term { return Term{kind: KindLiteral, value: s, dtype: XSDString} }

// TypedLiteral returns a literal with an explicit datatype IRI. An empty
// datatype is normalized to xsd:string so literals have one canonical form
// (plain literals and ^^xsd:string are the same term).
func TypedLiteral(lexical, datatype string) Term {
	if datatype == "" {
		datatype = XSDString
	}
	return Term{kind: KindLiteral, value: lexical, dtype: datatype}
}

// Well-known datatype IRIs used by the SLIM store.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Integer returns an integer-typed literal.
func Integer(n int64) Term {
	return Term{kind: KindLiteral, value: strconv.FormatInt(n, 10), dtype: XSDInteger}
}

// Float returns a decimal-typed literal.
func Float(f float64) Term {
	return Term{kind: KindLiteral, value: strconv.FormatFloat(f, 'g', -1, 64), dtype: XSDDecimal}
}

// Bool returns a boolean-typed literal.
func Bool(b bool) Term {
	return Term{kind: KindLiteral, value: strconv.FormatBool(b), dtype: XSDBoolean}
}

// Kind reports the term's kind.
func (t Term) Kind() TermKind { return t.kind }

// Value returns the IRI text, blank label, or literal lexical form.
func (t Term) Value() string { return t.value }

// Datatype returns the literal datatype IRI, or "" for non-literals.
func (t Term) Datatype() string { return t.dtype }

// IsZero reports whether t is the zero Term (used as a wildcard in queries).
func (t Term) IsZero() bool { return t == Zero }

// IsResource reports whether t can appear in subject position (IRI or blank).
func (t Term) IsResource() bool { return t.kind == KindIRI || t.kind == KindBlank }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.kind == KindLiteral }

// Int parses an integer literal. It returns false if t is not a literal or
// does not parse as an integer.
func (t Term) Int() (int64, bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	n, err := strconv.ParseInt(t.value, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Num parses a numeric literal (integer or decimal).
func (t Term) Num() (float64, bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Truth parses a boolean literal.
func (t Term) Truth() (bool, bool) {
	if t.kind != KindLiteral {
		return false, false
	}
	b, err := strconv.ParseBool(t.value)
	if err != nil {
		return false, false
	}
	return b, true
}

// String implements fmt.Stringer using N-Triples-like syntax.
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindBlank:
		return "_:" + t.value
	case KindLiteral:
		q := strconv.Quote(t.value)
		if t.dtype == "" || t.dtype == XSDString {
			return q
		}
		return q + "^^<" + t.dtype + ">"
	default:
		return "<?>"
	}
}

// Compare orders terms: by kind, then value, then datatype. It gives graphs
// a deterministic serialization order.
func (t Term) Compare(u Term) int {
	if t.kind != u.kind {
		if t.kind < u.kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.value, u.value); c != 0 {
		return c
	}
	return strings.Compare(t.dtype, u.dtype)
}
