package rdf

import (
	"testing"
)

func TestPrefixExpand(t *testing.T) {
	pm := NewPrefixMap()
	cases := []struct {
		in   string
		want string
	}{
		{"rdf:type", NSRDF + "type"},
		{"rdfs:Class", NSRDFS + "Class"},
		{"slim:Construct", NSSLIM + "Construct"},
		{"pad:Bundle", NSPad + "Bundle"},
		{"http://already/full", "http://already/full"},
	}
	for _, c := range cases {
		got, err := pm.Expand(c.in)
		if err != nil {
			t.Errorf("Expand(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Expand(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrefixExpandErrors(t *testing.T) {
	pm := NewPrefixMap()
	if _, err := pm.Expand("nosuch:thing"); err == nil {
		t.Error("unknown prefix accepted")
	}
	if _, err := pm.Expand("noprefix"); err == nil {
		t.Error("bare name without colon accepted")
	}
}

func TestPrefixShrink(t *testing.T) {
	pm := NewPrefixMap()
	cases := []struct {
		in   string
		want string
	}{
		{NSRDF + "type", "rdf:type"},
		{NSPad + "Bundle", "pad:Bundle"},
		{"http://unbound/x", "http://unbound/x"},
	}
	for _, c := range cases {
		if got := pm.Shrink(c.in); got != c.want {
			t.Errorf("Shrink(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrefixLongestWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://x/")
	pm.Bind("b", "http://x/deeper/")
	if got := pm.Shrink("http://x/deeper/leaf"); got != "b:leaf" {
		t.Errorf("Shrink = %q, want b:leaf (longest namespace must win)", got)
	}
}

func TestPrefixRebind(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("z", "http://old/")
	pm.Bind("z", "http://new/")
	got, err := pm.Expand("z:x")
	if err != nil || got != "http://new/x" {
		t.Errorf("after rebind, Expand(z:x) = %q, %v", got, err)
	}
	// The stale reverse entry must be gone.
	if got := pm.Shrink("http://old/x"); got != "http://old/x" {
		t.Errorf("Shrink of unbound old namespace = %q, want unchanged", got)
	}
}

func TestShrinkTerm(t *testing.T) {
	pm := NewPrefixMap()
	if got := pm.ShrinkTerm(IRI(NSRDF + "type")); got != "rdf:type" {
		t.Errorf("ShrinkTerm(IRI) = %q", got)
	}
	if got := pm.ShrinkTerm(String("lit")); got != `"lit"` {
		t.Errorf("ShrinkTerm(literal) = %q", got)
	}
	if got := pm.ShrinkTerm(Blank("b")); got != "_:b" {
		t.Errorf("ShrinkTerm(blank) = %q", got)
	}
}
