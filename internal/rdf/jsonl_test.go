package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func jsonlFixture(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, tr := range []Triple{
		T(IRI("http://x/s1"), IRI("http://x/p"), IRI("http://x/o1")),
		T(IRI("http://x/s1"), IRI("http://x/p"), String("plain string with \"quotes\" and\nnewline")),
		T(IRI("http://x/s2"), IRI("http://x/n"), TypedLiteral("42", XSDInteger)),
		T(Blank("b0"), IRI("http://x/p"), Blank("b1")),
		T(IRI("http://x/s3"), IRI("http://x/p"), TypedLiteral("plain-but-explicit", XSDString)),
	} {
		if _, err := g.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestJSONLRoundTrip(t *testing.T) {
	g := jsonlFixture(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatalf("round trip changed the graph: %d vs %d triples", got.Len(), g.Len())
	}
}

func TestJSONLDeterministic(t *testing.T) {
	g := jsonlFixture(t)
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, g); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSONL output is not deterministic")
	}
	// One JSON object per line, no blank lines.
	for i, line := range strings.Split(strings.TrimRight(a.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a JSON object: %q", i+1, line)
		}
	}
}

func TestJSONLCommentsAndBlanks(t *testing.T) {
	in := `# provenance: exported by trimq

{"s":{"kind":"iri","value":"http://x/s"},"p":{"kind":"iri","value":"http://x/p"},"o":{"kind":"literal","value":"v"}}
`
	g, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("parsed %d triples, want 1", g.Len())
	}
	// A plain literal with no datatype field is an xsd:string.
	tr := g.All()[0]
	if tr.Object.Datatype() != XSDString {
		t.Fatalf("bare literal datatype = %q, want xsd:string", tr.Object.Datatype())
	}
}

func TestJSONLErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"bad json", "{not json}\n", "line 1"},
		{"unknown kind", `{"s":{"kind":"iri","value":"http://x/s"},"p":{"kind":"iri","value":"http://x/p"},"o":{"kind":"alien","value":"v"}}` + "\n", "line 1"},
		{"second line", `{"s":{"kind":"iri","value":"http://x/s"},"p":{"kind":"iri","value":"http://x/p"},"o":{"kind":"literal","value":"v"}}` + "\n{broken\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("malformed JSONL accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}
