package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples writes the graph in N-Triples syntax, one statement per
// line, in deterministic (sorted) order so output is diffable.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.All() {
		if _, err := bw.WriteString(encodeNTriple(t)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeTriple renders one triple as its N-Triples statement line (no
// trailing newline). It is the canonical single-triple wire form, used by
// the WAL backend's op records as well as WriteNTriples.
func EncodeTriple(t Triple) string { return encodeNTriple(t) }

// ParseTriple parses one N-Triples statement line, the inverse of
// EncodeTriple.
func ParseTriple(line string) (Triple, error) { return parseNTripleLine(line) }

func encodeNTriple(t Triple) string {
	return encodeNTerm(t.Subject) + " " + encodeNTerm(t.Predicate) + " " + encodeNTerm(t.Object) + " ."
}

func encodeNTerm(t Term) string {
	switch t.Kind() {
	case KindIRI:
		return "<" + escapeIRI(t.Value()) + ">"
	case KindBlank:
		return "_:" + t.Value()
	case KindLiteral:
		s := `"` + escapeLiteral(t.Value()) + `"`
		if dt := t.Datatype(); dt != "" && dt != XSDString {
			s += "^^<" + escapeIRI(dt) + ">"
		}
		return s
	}
	return ""
}

func escapeIRI(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
			fmt.Fprintf(&b, "\\u%04X", r)
		default:
			if r <= 0x20 {
				fmt.Fprintf(&b, "\\u%04X", r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ReadNTriples parses N-Triples text into a new graph. Blank lines and
// #-comments are permitted. Parsing stops with an error identifying the
// offending line number.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		if _, err := g.Add(t); err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return g, nil
}

func parseNTripleLine(line string) (Triple, error) {
	p := &ntParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p.ws()
	pred, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	p.ws()
	obj, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.ws()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("expected terminating '.' at offset %d", p.i)
	}
	p.ws()
	if p.i != len(p.s) {
		return Triple{}, fmt.Errorf("trailing garbage after '.'")
	}
	return T(subj, pred, obj), nil
}

type ntParser struct {
	s string
	i int
}

func (p *ntParser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *ntParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	if p.i >= len(p.s) {
		return Zero, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Zero, fmt.Errorf("unexpected character %q at offset %d", p.s[p.i], p.i)
	}
}

func (p *ntParser) iri() (Term, error) {
	p.i++ // consume '<'
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != '>' {
		p.i++
	}
	if p.i >= len(p.s) {
		return Zero, fmt.Errorf("unterminated IRI")
	}
	raw := p.s[start:p.i]
	p.i++ // consume '>'
	val, err := unescapeUnicode(raw)
	if err != nil {
		return Zero, err
	}
	return IRI(val), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Zero, fmt.Errorf("malformed blank node label")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && !isNTWhitespaceOrDot(p.s[p.i]) {
		p.i++
	}
	label := p.s[start:p.i]
	if label == "" {
		return Zero, fmt.Errorf("empty blank node label")
	}
	return Blank(label), nil
}

func isNTWhitespaceOrDot(c byte) bool {
	return c == ' ' || c == '\t'
}

func (p *ntParser) literal() (Term, error) {
	p.i++ // consume '"'
	var b strings.Builder
	for p.i < len(p.s) {
		c := p.s[p.i]
		if c == '"' {
			p.i++
			// Optional datatype.
			if strings.HasPrefix(p.s[p.i:], "^^<") {
				p.i += 2
				dt, err := p.iri()
				if err != nil {
					return Zero, fmt.Errorf("datatype: %w", err)
				}
				return TypedLiteral(b.String(), dt.Value()), nil
			}
			return String(b.String()), nil
		}
		if c == '\\' {
			p.i++
			if p.i >= len(p.s) {
				return Zero, fmt.Errorf("dangling escape in literal")
			}
			switch p.s[p.i] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				if p.i+4 >= len(p.s) {
					return Zero, fmt.Errorf("truncated \\u escape")
				}
				r, err := parseHexRune(p.s[p.i+1 : p.i+5])
				if err != nil {
					return Zero, err
				}
				b.WriteRune(r)
				p.i += 4
			default:
				return Zero, fmt.Errorf("unknown escape \\%c", p.s[p.i])
			}
			p.i++
			continue
		}
		b.WriteByte(c)
		p.i++
	}
	return Zero, fmt.Errorf("unterminated literal")
}

func unescapeUnicode(s string) (string, error) {
	if !strings.Contains(s, "\\u") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+5 < len(s)+1 && i+1 < len(s) && s[i+1] == 'u' {
			if i+6 > len(s) {
				return "", fmt.Errorf("truncated \\u escape in IRI")
			}
			r, err := parseHexRune(s[i+2 : i+6])
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			i += 6
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String(), nil
}

func parseHexRune(hex4 string) (rune, error) {
	var r rune
	for i := 0; i < 4; i++ {
		c := hex4[i]
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q in \\u escape", c)
		}
	}
	return r, nil
}
