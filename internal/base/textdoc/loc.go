package textdoc

import (
	"fmt"
	"strconv"
	"strings"
)

// Loc addresses a paragraph or a word span within it: section and paragraph
// are 1-based; FirstWord/LastWord of 0 mean the whole paragraph.
type Loc struct {
	Section   int
	Paragraph int
	FirstWord int
	LastWord  int
}

// WholeParagraph reports whether the location addresses the full paragraph.
func (l Loc) WholeParagraph() bool { return l.FirstWord == 0 && l.LastWord == 0 }

// before orders locations in document order.
func (l Loc) before(o Loc) bool {
	if l.Section != o.Section {
		return l.Section < o.Section
	}
	if l.Paragraph != o.Paragraph {
		return l.Paragraph < o.Paragraph
	}
	return l.FirstWord < o.FirstWord
}

// String renders the location as an address path: "s2/p3" or "s2/p3/w5-8".
func (l Loc) String() string {
	if l.WholeParagraph() {
		return fmt.Sprintf("s%d/p%d", l.Section, l.Paragraph)
	}
	return fmt.Sprintf("s%d/p%d/w%d-%d", l.Section, l.Paragraph, l.FirstWord, l.LastWord)
}

// ParseLoc parses an address path produced by Loc.String.
func ParseLoc(path string) (Loc, error) {
	parts := strings.Split(path, "/")
	if len(parts) != 2 && len(parts) != 3 {
		return Loc{}, fmt.Errorf("textdoc: path %q must be sN/pN or sN/pN/wA-B", path)
	}
	sec, err := parseNum(parts[0], 's')
	if err != nil {
		return Loc{}, fmt.Errorf("textdoc: path %q: %w", path, err)
	}
	par, err := parseNum(parts[1], 'p')
	if err != nil {
		return Loc{}, fmt.Errorf("textdoc: path %q: %w", path, err)
	}
	l := Loc{Section: sec, Paragraph: par}
	if len(parts) == 3 {
		span := parts[2]
		if len(span) < 2 || span[0] != 'w' {
			return Loc{}, fmt.Errorf("textdoc: path %q: span must start with 'w'", path)
		}
		a, b, found := strings.Cut(span[1:], "-")
		if !found {
			return Loc{}, fmt.Errorf("textdoc: path %q: span must be wA-B", path)
		}
		first, err := strconv.Atoi(a)
		if err != nil || first < 1 {
			return Loc{}, fmt.Errorf("textdoc: path %q: bad first word", path)
		}
		last, err := strconv.Atoi(b)
		if err != nil || last < first {
			return Loc{}, fmt.Errorf("textdoc: path %q: bad last word", path)
		}
		l.FirstWord, l.LastWord = first, last
	}
	return l, nil
}

func parseNum(s string, prefix byte) (int, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("component %q must start with %q", s, string(prefix))
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("component %q must be a positive number", s)
	}
	return n, nil
}
