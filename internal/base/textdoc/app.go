package textdoc

import (
	"fmt"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "text"

// App is the word-processor base application: a document library plus the
// viewer state (open document, selected location).
type App struct {
	mu   sync.Mutex
	docs map[string]*Document

	openDoc  *Document
	selected Loc
	hasSel   bool
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{docs: make(map[string]*Document)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-writer" }

// AddDocument registers a document in the library.
func (a *App) AddDocument(d *Document) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Name == "" {
		return fmt.Errorf("textdoc: document needs a name")
	}
	if _, ok := a.docs[d.Name]; ok {
		return fmt.Errorf("textdoc: document %q already in library", d.Name)
	}
	a.docs[d.Name] = d
	return nil
}

// LoadString parses text and registers it under the given name.
func (a *App) LoadString(name, text string) (*Document, error) {
	d := Parse(name, text)
	if err := a.AddDocument(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Document looks up a document by name.
func (a *App) Document(name string) (*Document, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	return d, ok
}

// Open makes a document current without a selection.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openDoc, a.hasSel = d, false
	return nil
}

// Select simulates the user selecting the location in the open document.
func (a *App) Select(l Loc) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil {
		return fmt.Errorf("textdoc: no open document")
	}
	if _, err := a.openDoc.resolveLoc(l); err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected, a.hasSel = l, true
	return nil
}

// CurrentSelection implements base.Application.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil || !a.hasSel {
		return base.Address{}, base.ErrNoSelection
	}
	return base.Address{Scheme: Scheme, File: a.openDoc.Name, Path: a.selected.String()}, nil
}

func (a *App) locate(addr base.Address) (*Document, Loc, string, error) {
	if addr.Scheme != Scheme {
		return nil, Loc{}, "", fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	d, ok := a.docs[addr.File]
	if !ok {
		return nil, Loc{}, "", fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	l, err := ParseLoc(addr.Path)
	if err != nil {
		return nil, Loc{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	content, err := d.resolveLoc(l)
	if err != nil {
		return nil, Loc{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	return d, l, content, nil
}

// GoTo implements base.Application: open the document, select the span, and
// return the element with its enclosing paragraph as context.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, content, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openDoc, a.selected, a.hasSel = d, l, true
	para, _ := d.Paragraph(l.Section, l.Paragraph)
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: d.Name, Path: l.String()},
		Content: content,
		Context: para.Text(),
	}, nil
}

// ExtractContent implements base.ContentExtractor.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, content, err := a.locate(addr)
	return content, err
}

// ExtractContext implements base.ContextProvider: the enclosing paragraph.
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, _, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	p, err := d.Paragraph(l.Section, l.Paragraph)
	if err != nil {
		return "", err
	}
	return p.Text(), nil
}
