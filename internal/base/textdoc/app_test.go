package textdoc

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func appWithNote(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if _, err := a.LoadString("note.txt", noteText); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppIdentity(t *testing.T) {
	a := NewApp()
	if a.Scheme() != Scheme || a.Name() == "" {
		t.Fatal("bad identity")
	}
}

func TestAppLibrary(t *testing.T) {
	a := NewApp()
	if err := a.AddDocument(&Document{}); err == nil {
		t.Error("unnamed document accepted")
	}
	if _, err := a.LoadString("n", "text"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadString("n", "text"); err == nil {
		t.Error("duplicate accepted")
	}
	if _, ok := a.Document("n"); !ok {
		t.Error("lookup failed")
	}
}

func TestSelectionFlow(t *testing.T) {
	a := appWithNote(t)
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("selection before open")
	}
	if err := a.Select(Loc{Section: 1, Paragraph: 1}); err == nil {
		t.Fatal("Select before Open succeeded")
	}
	if err := a.Open("nope"); !errors.Is(err, base.ErrUnknownDocument) {
		t.Fatalf("Open missing = %v", err)
	}
	if err := a.Open("note.txt"); err != nil {
		t.Fatal(err)
	}
	sel := Loc{Section: 2, Paragraph: 1, FirstWord: 2, LastWord: 3}
	if err := a.Select(sel); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if addr.Path != "s2/p1/w2-3" {
		t.Fatalf("path = %q", addr.Path)
	}
	if err := a.Select(Loc{Section: 9, Paragraph: 1}); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad Select = %v", err)
	}
}

func TestGoTo(t *testing.T) {
	a := appWithNote(t)
	addr := base.Address{Scheme: Scheme, File: "note.txt", Path: "s2/p1/w2-3"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "furosemide drip" {
		t.Errorf("Content = %q", el.Content)
	}
	if el.Context == "" || el.Context == el.Content {
		t.Errorf("Context = %q", el.Context)
	}
	sel, err := a.CurrentSelection()
	if err != nil || sel != addr {
		t.Errorf("selection after GoTo = %v, %v", sel, err)
	}
}

func TestGoToWholeParagraph(t *testing.T) {
	a := appWithNote(t)
	el, err := a.GoTo(base.Address{Scheme: Scheme, File: "note.txt", Path: "s1/p2"})
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Electrolytes stable after repletion." {
		t.Errorf("Content = %q", el.Content)
	}
	if el.Context != el.Content {
		t.Errorf("whole-paragraph context should equal content; got %q", el.Context)
	}
}

func TestGoToErrors(t *testing.T) {
	a := appWithNote(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "xml", File: "note.txt", Path: "s1/p1"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "s1/p1"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "note.txt", Path: "junk"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "note.txt", Path: "s1/p1/w1-999"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}

func TestExtract(t *testing.T) {
	a := appWithNote(t)
	content, err := a.ExtractContent(base.Address{Scheme: Scheme, File: "note.txt", Path: "s1/p2/w1-2"})
	if err != nil || content != "Electrolytes stable" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(base.Address{Scheme: Scheme, File: "note.txt", Path: "s1/p2/w1-2"})
	if err != nil || ctx != "Electrolytes stable after repletion." {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
	// No viewer movement.
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("extraction moved the viewer")
	}
}
