// Package textdoc is the word-processor base substrate: sectioned documents
// of paragraphs addressed down to word spans, standing in for the paper's
// Microsoft Word marks. It also implements in-document comments with
// next/previous navigation, the "Microsoft Word Comments" behavior the paper
// compares against in §5.
package textdoc

import (
	"fmt"
	"strings"
)

// Document is a named, sectioned text document.
type Document struct {
	// Name is the document's identity in the application library.
	Name     string
	Sections []*Section
	comments []*Comment
}

// Section is a heading plus its paragraphs.
type Section struct {
	// Heading is the section title ("" for the implicit first section).
	Heading    string
	Paragraphs []Paragraph
}

// Paragraph is a run of words.
type Paragraph struct {
	words []string
}

// NewParagraph splits text into words on whitespace.
func NewParagraph(text string) Paragraph {
	return Paragraph{words: strings.Fields(text)}
}

// Words returns the number of words.
func (p Paragraph) Words() int { return len(p.words) }

// Text returns the paragraph's full text.
func (p Paragraph) Text() string { return strings.Join(p.words, " ") }

// Span returns the text of words first..last (1-based, inclusive).
func (p Paragraph) Span(first, last int) (string, error) {
	if first < 1 || last < first || last > len(p.words) {
		return "", fmt.Errorf("textdoc: word span %d-%d out of range (paragraph has %d words)", first, last, len(p.words))
	}
	return strings.Join(p.words[first-1:last], " "), nil
}

// Parse builds a document from plain text: lines starting with "# " open a
// new section; blank lines separate paragraphs.
func Parse(name, text string) *Document {
	d := &Document{Name: name}
	cur := &Section{}
	var para []string
	flushPara := func() {
		if len(para) > 0 {
			cur.Paragraphs = append(cur.Paragraphs, NewParagraph(strings.Join(para, " ")))
			para = nil
		}
	}
	flushSection := func() {
		flushPara()
		if cur.Heading != "" || len(cur.Paragraphs) > 0 {
			d.Sections = append(d.Sections, cur)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "# "):
			flushSection()
			cur = &Section{Heading: strings.TrimSpace(trimmed[2:])}
		case trimmed == "":
			flushPara()
		default:
			para = append(para, trimmed)
		}
	}
	flushSection()
	return d
}

// Section returns the i-th (1-based) section.
func (d *Document) Section(i int) (*Section, error) {
	if i < 1 || i > len(d.Sections) {
		return nil, fmt.Errorf("textdoc: no section %d in %q (%d sections)", i, d.Name, len(d.Sections))
	}
	return d.Sections[i-1], nil
}

// Paragraph returns the j-th (1-based) paragraph of the i-th section.
func (d *Document) Paragraph(i, j int) (Paragraph, error) {
	s, err := d.Section(i)
	if err != nil {
		return Paragraph{}, err
	}
	if j < 1 || j > len(s.Paragraphs) {
		return Paragraph{}, fmt.Errorf("textdoc: no paragraph %d in section %d of %q", j, i, d.Name)
	}
	return s.Paragraphs[j-1], nil
}

// FindWord returns the addresses (as Locs) of every occurrence of the word,
// case-insensitively, in document order.
func (d *Document) FindWord(word string) []Loc {
	var out []Loc
	needle := strings.ToLower(word)
	for si, s := range d.Sections {
		for pi, p := range s.Paragraphs {
			for wi, w := range p.words {
				if strings.ToLower(strings.Trim(w, ".,;:!?\"'()")) == needle {
					out = append(out, Loc{Section: si + 1, Paragraph: pi + 1, FirstWord: wi + 1, LastWord: wi + 1})
				}
			}
		}
	}
	return out
}

// Comment is an in-document annotation anchored at a location (the §5
// Word-Comments baseline).
type Comment struct {
	// ID is the comment's 1-based creation index.
	ID int
	// At anchors the comment.
	At Loc
	// Text is the comment body.
	Text string
}

// AddComment appends a comment anchored at the location.
func (d *Document) AddComment(at Loc, text string) (*Comment, error) {
	if _, err := d.resolveLoc(at); err != nil {
		return nil, err
	}
	c := &Comment{ID: len(d.comments) + 1, At: at, Text: text}
	d.comments = append(d.comments, c)
	return c, nil
}

// Comments returns the comments in creation order.
func (d *Document) Comments() []*Comment {
	return append([]*Comment(nil), d.comments...)
}

// NextComment returns the first comment anchored strictly after the
// location in document order, wrapping to the first comment ("go to next
// annotation in a single document", §5).
func (d *Document) NextComment(after Loc) (*Comment, bool) {
	var best *Comment
	var first *Comment
	for _, c := range d.comments {
		if first == nil || c.At.before(first.At) {
			first = c
		}
		if after.before(c.At) && (best == nil || c.At.before(best.At)) {
			best = c
		}
	}
	if best != nil {
		return best, true
	}
	if first != nil {
		return first, true
	}
	return nil, false
}

// PrevComment is the reverse of NextComment.
func (d *Document) PrevComment(before Loc) (*Comment, bool) {
	var best *Comment
	var last *Comment
	for _, c := range d.comments {
		if last == nil || last.At.before(c.At) {
			last = c
		}
		if c.At.before(before) && (best == nil || best.At.before(c.At)) {
			best = c
		}
	}
	if best != nil {
		return best, true
	}
	if last != nil {
		return last, true
	}
	return nil, false
}

func (d *Document) resolveLoc(l Loc) (string, error) {
	p, err := d.Paragraph(l.Section, l.Paragraph)
	if err != nil {
		return "", err
	}
	if l.FirstWord == 0 && l.LastWord == 0 {
		return p.Text(), nil
	}
	return p.Span(l.FirstWord, l.LastWord)
}
