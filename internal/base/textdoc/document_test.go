package textdoc

import (
	"testing"
)

const noteText = `# Assessment
Patient is a 67 year old male admitted with acute decompensated heart failure.
He remains on IV diuresis with good urine output.

Electrolytes stable after repletion.

# Plan
Continue furosemide drip at current rate.
Recheck potassium and magnesium this evening.

Consider transition to oral diuretics tomorrow.
`

func noteDoc(t *testing.T) *Document {
	t.Helper()
	return Parse("note.txt", noteText)
}

func TestParseSectionsAndParagraphs(t *testing.T) {
	d := noteDoc(t)
	if len(d.Sections) != 2 {
		t.Fatalf("sections = %d", len(d.Sections))
	}
	if d.Sections[0].Heading != "Assessment" || d.Sections[1].Heading != "Plan" {
		t.Fatalf("headings = %q, %q", d.Sections[0].Heading, d.Sections[1].Heading)
	}
	if len(d.Sections[0].Paragraphs) != 2 {
		t.Fatalf("assessment paragraphs = %d", len(d.Sections[0].Paragraphs))
	}
	if len(d.Sections[1].Paragraphs) != 2 {
		t.Fatalf("plan paragraphs = %d", len(d.Sections[1].Paragraphs))
	}
	// Adjacent lines merge into one paragraph.
	p, err := d.Paragraph(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Words() != 22 {
		t.Fatalf("paragraph 1.1 words = %d: %q", p.Words(), p.Text())
	}
}

func TestParseNoHeading(t *testing.T) {
	d := Parse("x", "just a paragraph\n\nand another")
	if len(d.Sections) != 1 || d.Sections[0].Heading != "" {
		t.Fatalf("implicit section wrong: %+v", d.Sections)
	}
	if len(d.Sections[0].Paragraphs) != 2 {
		t.Fatalf("paragraphs = %d", len(d.Sections[0].Paragraphs))
	}
}

func TestParseEmpty(t *testing.T) {
	d := Parse("x", "")
	if len(d.Sections) != 0 {
		t.Fatalf("empty doc has %d sections", len(d.Sections))
	}
}

func TestSectionParagraphErrors(t *testing.T) {
	d := noteDoc(t)
	if _, err := d.Section(0); err == nil {
		t.Error("Section(0) succeeded")
	}
	if _, err := d.Section(3); err == nil {
		t.Error("Section(3) succeeded")
	}
	if _, err := d.Paragraph(1, 0); err == nil {
		t.Error("Paragraph(1,0) succeeded")
	}
	if _, err := d.Paragraph(1, 9); err == nil {
		t.Error("Paragraph(1,9) succeeded")
	}
}

func TestSpan(t *testing.T) {
	p := NewParagraph("alpha beta gamma delta")
	got, err := p.Span(2, 3)
	if err != nil || got != "beta gamma" {
		t.Fatalf("Span = %q, %v", got, err)
	}
	if _, err := p.Span(0, 1); err == nil {
		t.Error("Span(0,1) succeeded")
	}
	if _, err := p.Span(3, 2); err == nil {
		t.Error("Span(3,2) succeeded")
	}
	if _, err := p.Span(1, 5); err == nil {
		t.Error("Span beyond end succeeded")
	}
}

func TestFindWord(t *testing.T) {
	d := noteDoc(t)
	hits := d.FindWord("furosemide")
	if len(hits) != 1 {
		t.Fatalf("FindWord = %v", hits)
	}
	l := hits[0]
	if l.Section != 2 || l.Paragraph != 1 {
		t.Fatalf("loc = %v", l)
	}
	// Punctuation-trimmed and case-insensitive.
	if len(d.FindWord("Potassium")) != 1 {
		t.Error("case-insensitive find failed")
	}
	if len(d.FindWord("rate")) != 1 { // "rate." with period
		t.Error("punctuation-trimmed find failed")
	}
}

func TestComments(t *testing.T) {
	d := noteDoc(t)
	l1 := Loc{Section: 1, Paragraph: 1}
	l2 := Loc{Section: 2, Paragraph: 1}
	c1, err := d.AddComment(l1, "verify ins/outs")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.AddComment(l2, "dose unchanged?")
	if err != nil {
		t.Fatal(err)
	}
	if c1.ID != 1 || c2.ID != 2 {
		t.Fatalf("IDs = %d, %d", c1.ID, c2.ID)
	}
	if len(d.Comments()) != 2 {
		t.Fatal("comment count wrong")
	}
	// Anchor must resolve.
	if _, err := d.AddComment(Loc{Section: 9, Paragraph: 1}, "x"); err == nil {
		t.Fatal("comment at bad anchor accepted")
	}
}

func TestCommentNavigation(t *testing.T) {
	d := noteDoc(t)
	l1 := Loc{Section: 1, Paragraph: 1}
	l2 := Loc{Section: 1, Paragraph: 2}
	l3 := Loc{Section: 2, Paragraph: 1}
	d.AddComment(l1, "a")
	d.AddComment(l3, "c")
	d.AddComment(l2, "b")

	next, ok := d.NextComment(l1)
	if !ok || next.Text != "b" {
		t.Fatalf("NextComment(l1) = %v, %v", next, ok)
	}
	// Wraps around after the last.
	next, ok = d.NextComment(l3)
	if !ok || next.Text != "a" {
		t.Fatalf("NextComment(last) = %v, %v", next, ok)
	}
	prev, ok := d.PrevComment(l3)
	if !ok || prev.Text != "b" {
		t.Fatalf("PrevComment(l3) = %v, %v", prev, ok)
	}
	// Wraps to the last before the first.
	prev, ok = d.PrevComment(l1)
	if !ok || prev.Text != "c" {
		t.Fatalf("PrevComment(first) = %v, %v", prev, ok)
	}
	empty := Parse("e", "one para")
	if _, ok := empty.NextComment(l1); ok {
		t.Error("NextComment on comment-free doc found one")
	}
	if _, ok := empty.PrevComment(l1); ok {
		t.Error("PrevComment on comment-free doc found one")
	}
}

func TestLocStringParseRoundTrip(t *testing.T) {
	cases := []Loc{
		{Section: 1, Paragraph: 2},
		{Section: 3, Paragraph: 1, FirstWord: 4, LastWord: 7},
		{Section: 10, Paragraph: 20, FirstWord: 1, LastWord: 1},
	}
	for _, l := range cases {
		back, err := ParseLoc(l.String())
		if err != nil {
			t.Errorf("ParseLoc(%q): %v", l.String(), err)
			continue
		}
		if back != l {
			t.Errorf("round trip %v -> %v", l, back)
		}
	}
}

func TestParseLocErrors(t *testing.T) {
	bad := []string{
		"", "s1", "s1/p2/w3", "x1/p2", "s1/x2", "s0/p1", "s1/p0",
		"s1/p1/w0-2", "s1/p1/w3-2", "s1/p1/wx-y", "s1/p1/w1-2/extra",
		"sA/p1", "s1/pB",
	}
	for _, p := range bad {
		if _, err := ParseLoc(p); err == nil {
			t.Errorf("ParseLoc(%q) succeeded", p)
		}
	}
}
