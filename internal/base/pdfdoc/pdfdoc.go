// Package pdfdoc is the paginated-document base substrate, standing in for
// the paper's Adobe PDF marks: fixed pages of numbered lines, addressed by
// page plus line span.
package pdfdoc

import (
	"fmt"
	"strconv"
	"strings"
)

// Document is a named, paginated document.
type Document struct {
	// Name is the document's identity in the application library.
	Name  string
	pages [][]string // pages of lines
}

// DefaultLinesPerPage is the pagination used by Paginate.
const DefaultLinesPerPage = 40

// Paginate builds a document from plain text, breaking it into pages of at
// most linesPerPage lines (0 selects DefaultLinesPerPage). Form-feed
// characters force page breaks, as in print-oriented text.
func Paginate(name, text string, linesPerPage int) *Document {
	if linesPerPage <= 0 {
		linesPerPage = DefaultLinesPerPage
	}
	d := &Document{Name: name}
	var page []string
	flush := func() {
		if len(page) > 0 {
			d.pages = append(d.pages, page)
			page = nil
		}
	}
	for _, rawPage := range strings.Split(text, "\f") {
		for _, line := range strings.Split(rawPage, "\n") {
			page = append(page, line)
			if len(page) == linesPerPage {
				flush()
			}
		}
		flush()
	}
	return d
}

// Pages returns the page count.
func (d *Document) Pages() int { return len(d.pages) }

// PageLines returns the number of lines on the 1-based page.
func (d *Document) PageLines(page int) (int, error) {
	if page < 1 || page > len(d.pages) {
		return 0, fmt.Errorf("pdfdoc: no page %d in %q (%d pages)", page, d.Name, len(d.pages))
	}
	return len(d.pages[page-1]), nil
}

// Lines returns lines first..last (1-based, inclusive) of the page, joined
// by newlines.
func (d *Document) Lines(page, first, last int) (string, error) {
	n, err := d.PageLines(page)
	if err != nil {
		return "", err
	}
	if first < 1 || last < first || last > n {
		return "", fmt.Errorf("pdfdoc: line span %d-%d out of range on page %d of %q (%d lines)", first, last, page, d.Name, n)
	}
	return strings.Join(d.pages[page-1][first-1:last], "\n"), nil
}

// FindText returns the locations of every line containing the needle.
func (d *Document) FindText(needle string) []Loc {
	var out []Loc
	for pi, page := range d.pages {
		for li, line := range page {
			if strings.Contains(line, needle) {
				out = append(out, Loc{Page: pi + 1, FirstLine: li + 1, LastLine: li + 1})
			}
		}
	}
	return out
}

// Loc addresses a line span on a page (1-based, inclusive).
type Loc struct {
	Page      int
	FirstLine int
	LastLine  int
}

// String renders the address path: "page2/lines5-8".
func (l Loc) String() string {
	return fmt.Sprintf("page%d/lines%d-%d", l.Page, l.FirstLine, l.LastLine)
}

// ParseLoc parses an address path produced by Loc.String.
func ParseLoc(path string) (Loc, error) {
	a, b, found := strings.Cut(path, "/")
	if !found {
		return Loc{}, fmt.Errorf("pdfdoc: path %q must be pageN/linesA-B", path)
	}
	pg, ok := strings.CutPrefix(a, "page")
	if !ok {
		return Loc{}, fmt.Errorf("pdfdoc: path %q must start with pageN", path)
	}
	page, err := strconv.Atoi(pg)
	if err != nil || page < 1 {
		return Loc{}, fmt.Errorf("pdfdoc: path %q: bad page number", path)
	}
	span, ok := strings.CutPrefix(b, "lines")
	if !ok {
		return Loc{}, fmt.Errorf("pdfdoc: path %q: span must be linesA-B", path)
	}
	fs, ls, found := strings.Cut(span, "-")
	if !found {
		return Loc{}, fmt.Errorf("pdfdoc: path %q: span must be linesA-B", path)
	}
	first, err := strconv.Atoi(fs)
	if err != nil || first < 1 {
		return Loc{}, fmt.Errorf("pdfdoc: path %q: bad first line", path)
	}
	last, err := strconv.Atoi(ls)
	if err != nil || last < first {
		return Loc{}, fmt.Errorf("pdfdoc: path %q: bad last line", path)
	}
	return Loc{Page: page, FirstLine: first, LastLine: last}, nil
}
