package pdfdoc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/base"
)

func reportText() string {
	var lines []string
	for i := 1; i <= 25; i++ {
		lines = append(lines, fmt.Sprintf("line %d of the echocardiography report", i))
	}
	return strings.Join(lines, "\n")
}

func TestPaginate(t *testing.T) {
	d := Paginate("echo.pdf", reportText(), 10)
	if d.Pages() != 3 {
		t.Fatalf("pages = %d", d.Pages())
	}
	if n, _ := d.PageLines(1); n != 10 {
		t.Errorf("page 1 lines = %d", n)
	}
	if n, _ := d.PageLines(3); n != 5 {
		t.Errorf("page 3 lines = %d", n)
	}
}

func TestPaginateDefault(t *testing.T) {
	d := Paginate("x", reportText(), 0)
	if d.Pages() != 1 {
		t.Fatalf("default pagination pages = %d", d.Pages())
	}
}

func TestPaginateFormFeed(t *testing.T) {
	d := Paginate("x", "a\nb\fc\nd", 10)
	if d.Pages() != 2 {
		t.Fatalf("form-feed pages = %d", d.Pages())
	}
	got, err := d.Lines(2, 1, 2)
	if err != nil || got != "c\nd" {
		t.Fatalf("page 2 = %q, %v", got, err)
	}
}

func TestLines(t *testing.T) {
	d := Paginate("echo.pdf", reportText(), 10)
	got, err := d.Lines(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := "line 13 of the echocardiography report\nline 14 of the echocardiography report"
	if got != want {
		t.Fatalf("Lines = %q", got)
	}
}

func TestLinesErrors(t *testing.T) {
	d := Paginate("x", reportText(), 10)
	cases := []struct{ page, first, last int }{
		{0, 1, 1}, {4, 1, 1}, {1, 0, 1}, {1, 3, 2}, {1, 1, 11},
	}
	for _, c := range cases {
		if _, err := d.Lines(c.page, c.first, c.last); err == nil {
			t.Errorf("Lines(%d,%d,%d) succeeded", c.page, c.first, c.last)
		}
	}
}

func TestFindText(t *testing.T) {
	d := Paginate("x", reportText(), 10)
	hits := d.FindText("line 13")
	if len(hits) != 1 || hits[0] != (Loc{Page: 2, FirstLine: 3, LastLine: 3}) {
		t.Fatalf("FindText = %v", hits)
	}
	if len(d.FindText("absent")) != 0 {
		t.Fatal("found absent text")
	}
}

func TestLocRoundTrip(t *testing.T) {
	l := Loc{Page: 2, FirstLine: 5, LastLine: 8}
	if l.String() != "page2/lines5-8" {
		t.Fatalf("String = %q", l.String())
	}
	back, err := ParseLoc(l.String())
	if err != nil || back != l {
		t.Fatalf("round trip = %v, %v", back, err)
	}
}

func TestParseLocErrors(t *testing.T) {
	bad := []string{"", "page2", "p2/lines1-2", "page2/line1-2", "pageX/lines1-2", "page2/linesX-2", "page2/lines2-1", "page0/lines1-1", "page2/lines0-1", "page2/lines1"}
	for _, p := range bad {
		if _, err := ParseLoc(p); err == nil {
			t.Errorf("ParseLoc(%q) succeeded", p)
		}
	}
}

func appWithReport(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if _, err := a.LoadString("echo.pdf", reportText(), 10); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppFlow(t *testing.T) {
	a := appWithReport(t)
	if a.Scheme() != Scheme || a.Name() == "" {
		t.Fatal("bad identity")
	}
	if _, err := a.LoadString("echo.pdf", "x", 10); err == nil {
		t.Error("duplicate accepted")
	}
	if err := a.AddDocument(&Document{}); err == nil {
		t.Error("unnamed accepted")
	}
	if _, ok := a.Document("echo.pdf"); !ok {
		t.Error("lookup failed")
	}
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("selection before open")
	}
	if err := a.Select(Loc{1, 1, 1}); err == nil {
		t.Fatal("Select before Open succeeded")
	}
	if err := a.Open("echo.pdf"); err != nil {
		t.Fatal(err)
	}
	if err := a.Select(Loc{Page: 2, FirstLine: 3, LastLine: 4}); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil || addr.Path != "page2/lines3-4" {
		t.Fatalf("selection = %v, %v", addr, err)
	}
	if err := a.Select(Loc{Page: 9, FirstLine: 1, LastLine: 1}); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad Select = %v", err)
	}
}

func TestAppGoToAndContext(t *testing.T) {
	a := appWithReport(t)
	addr := base.Address{Scheme: Scheme, File: "echo.pdf", Path: "page2/lines3-4"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(el.Content, "line 13") || !strings.Contains(el.Content, "line 14") {
		t.Errorf("Content = %q", el.Content)
	}
	// Context includes two lines of padding each side.
	if !strings.Contains(el.Context, "line 11") || !strings.Contains(el.Context, "line 16") {
		t.Errorf("Context = %q", el.Context)
	}
	sel, err := a.CurrentSelection()
	if err != nil || sel != addr {
		t.Errorf("selection after GoTo = %v, %v", sel, err)
	}
	// Context clamps at page boundaries.
	el2, err := a.GoTo(base.Address{Scheme: Scheme, File: "echo.pdf", Path: "page1/lines1-1"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(el2.Context, "line 0") {
		t.Errorf("context before page start: %q", el2.Context)
	}
}

func TestAppGoToErrors(t *testing.T) {
	a := appWithReport(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "html", File: "echo.pdf", Path: "page1/lines1-1"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "page1/lines1-1"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "echo.pdf", Path: "nonsense"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "echo.pdf", Path: "page9/lines1-1"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}

func TestAppExtract(t *testing.T) {
	a := appWithReport(t)
	addr := base.Address{Scheme: Scheme, File: "echo.pdf", Path: "page1/lines2-2"}
	content, err := a.ExtractContent(addr)
	if err != nil || content != "line 2 of the echocardiography report" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(addr)
	if err != nil || !strings.Contains(ctx, "line 1 ") || !strings.Contains(ctx, "line 4 ") {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("extraction moved the viewer")
	}
}
