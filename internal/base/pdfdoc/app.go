package pdfdoc

import (
	"fmt"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "pdf"

// App is the paginated-document base application: a library plus viewer
// state (open document, current page, highlighted span).
type App struct {
	mu   sync.Mutex
	docs map[string]*Document

	openDoc  *Document
	selected Loc
	hasSel   bool
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{docs: make(map[string]*Document)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-pager" }

// AddDocument registers a document in the library.
func (a *App) AddDocument(d *Document) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Name == "" {
		return fmt.Errorf("pdfdoc: document needs a name")
	}
	if _, ok := a.docs[d.Name]; ok {
		return fmt.Errorf("pdfdoc: document %q already in library", d.Name)
	}
	a.docs[d.Name] = d
	return nil
}

// LoadString paginates text and registers it under the given name.
func (a *App) LoadString(name, text string, linesPerPage int) (*Document, error) {
	d := Paginate(name, text, linesPerPage)
	if err := a.AddDocument(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Document looks up a document by name.
func (a *App) Document(name string) (*Document, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	return d, ok
}

// Open makes a document current without a selection.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openDoc, a.hasSel = d, false
	return nil
}

// Select simulates the user highlighting a line span in the open document.
func (a *App) Select(l Loc) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil {
		return fmt.Errorf("pdfdoc: no open document")
	}
	if _, err := a.openDoc.Lines(l.Page, l.FirstLine, l.LastLine); err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected, a.hasSel = l, true
	return nil
}

// CurrentSelection implements base.Application.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil || !a.hasSel {
		return base.Address{}, base.ErrNoSelection
	}
	return base.Address{Scheme: Scheme, File: a.openDoc.Name, Path: a.selected.String()}, nil
}

func (a *App) locate(addr base.Address) (*Document, Loc, string, error) {
	if addr.Scheme != Scheme {
		return nil, Loc{}, "", fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	d, ok := a.docs[addr.File]
	if !ok {
		return nil, Loc{}, "", fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	l, err := ParseLoc(addr.Path)
	if err != nil {
		return nil, Loc{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	content, err := d.Lines(l.Page, l.FirstLine, l.LastLine)
	if err != nil {
		return nil, Loc{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	return d, l, content, nil
}

// GoTo implements base.Application: open the document, turn to the page,
// highlight the span.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, content, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openDoc, a.selected, a.hasSel = d, l, true
	ctx, _ := a.pageContextLocked(d, l)
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: d.Name, Path: l.String()},
		Content: content,
		Context: ctx,
	}, nil
}

// ExtractContent implements base.ContentExtractor.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, content, err := a.locate(addr)
	return content, err
}

// ExtractContext implements base.ContextProvider: the span plus up to two
// surrounding lines on each side.
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, _, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	return a.pageContextLocked(d, l)
}

func (a *App) pageContextLocked(d *Document, l Loc) (string, error) {
	n, err := d.PageLines(l.Page)
	if err != nil {
		return "", err
	}
	first := l.FirstLine - 2
	if first < 1 {
		first = 1
	}
	last := l.LastLine + 2
	if last > n {
		last = n
	}
	return d.Lines(l.Page, first, last)
}
