// Package base defines the narrow interface the SLIM architecture demands of
// base-layer information sources. The paper (§1): "we assume only that a base
// source can supply the address of a currently selected information element,
// and that it can return to that element given the address. While these
// capabilities may seem hopelessly limited, we have built a useful
// application on top of them."
//
// Each base application substrate (spreadsheet, xmldoc, textdoc, slides,
// pdfdoc, htmldoc) implements Application; optional capability interfaces
// (ContentExtractor, ContextProvider) expose the §6 extension behaviors
// "extract content" and "display in place" where the substrate supports them.
package base

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Address identifies one information element inside one document of one
// base application. The paper requires only that the base layer "support a
// local addressing scheme"; Address carries that scheme-specific expression
// opaquely in Path, with Scheme and File locating the interpreter.
type Address struct {
	// Scheme names the base information type ("spreadsheet", "xml", ...).
	Scheme string
	// File names the document within the application's library.
	File string
	// Path is the scheme-specific address expression, e.g. "Meds!B2:B4"
	// for a spreadsheet or "/report/panel[1]/k" for an XML document.
	Path string
}

// IsZero reports whether the address is empty.
func (a Address) IsZero() bool { return a == Address{} }

// String renders the address as scheme://file#path.
func (a Address) String() string {
	return a.Scheme + "://" + a.File + "#" + a.Path
}

// Element is a resolved information element: the content found at an
// address, plus optional surrounding context for display.
type Element struct {
	// Address is the element's own address (canonicalized by the app).
	Address Address
	// Content is the element's textual content.
	Content string
	// Context is nearby information useful when re-establishing context,
	// e.g. the whole spreadsheet row or the enclosing paragraph.
	Context string
}

// Application is the narrow base-application interface.
type Application interface {
	// Scheme returns the base information type this application serves.
	Scheme() string
	// Name identifies the application instance (e.g. "go-sheets").
	Name() string
	// CurrentSelection returns the address of the currently selected
	// information element, or ErrNoSelection.
	CurrentSelection() (Address, error)
	// GoTo drives the application to the element designated by the
	// address — opening the document, activating the right part, and
	// selecting the element (the paper's mark resolution behavior) — and
	// returns the element.
	GoTo(Address) (Element, error)
}

// ContentExtractor is the optional "extract content" behavior (§6): fetch
// an element's content without disturbing the application's selection.
type ContentExtractor interface {
	ExtractContent(Address) (string, error)
}

// ContextProvider optionally supplies display-in-place context around an
// element (§6 "display in place").
type ContextProvider interface {
	ExtractContext(Address) (string, error)
}

// Errors shared by all base applications.
var (
	// ErrNoSelection: the application has no current selection.
	ErrNoSelection = errors.New("base: no current selection")
	// ErrUnknownDocument: the address names a document not in the library.
	ErrUnknownDocument = errors.New("base: unknown document")
	// ErrBadAddress: the address expression cannot be parsed or does not
	// designate an element in the document.
	ErrBadAddress = errors.New("base: bad address")
	// ErrWrongScheme: the address belongs to a different application type.
	ErrWrongScheme = errors.New("base: address scheme does not match application")
	// ErrUnavailable: the base source is temporarily unreachable (I/O
	// hiccup, remote viewer restarting). Errors wrapping it are transient:
	// the Mark Manager's resilient resolution path retries them, where
	// permanent errors (ErrUnknownDocument, ErrBadAddress) fail fast and
	// fall down the degradation ladder (docs/ROBUSTNESS.md).
	ErrUnavailable = errors.New("base: source temporarily unavailable")
)

// IsTransient reports whether err is retryable: it wraps ErrUnavailable or
// implements interface{ Transient() bool } returning true. Base
// applications (and fault injectors) signal retryability this way; the
// Mark Manager's resilient resolution path consults it before retrying.
func IsTransient(err error) bool {
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Registry maps schemes to running base applications. The Mark Manager
// consults it to route mark resolution (Fig. 7). Registry is safe for
// concurrent use.
type Registry struct {
	mu   sync.RWMutex
	apps map[string]Application
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{apps: make(map[string]Application)}
}

// Register adds an application under its scheme. Registering a second
// application with the same scheme is an error: one mark module per base
// type drives exactly one application here, as in the SLIMPad prototype.
func (r *Registry) Register(app Application) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	scheme := app.Scheme()
	if scheme == "" {
		return fmt.Errorf("base: application %q has empty scheme", app.Name())
	}
	if _, ok := r.apps[scheme]; ok {
		return fmt.Errorf("base: scheme %q already registered", scheme)
	}
	r.apps[scheme] = app
	return nil
}

// Unregister removes the application serving the scheme.
func (r *Registry) Unregister(scheme string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.apps, scheme)
}

// Lookup returns the application serving the scheme.
func (r *Registry) Lookup(scheme string) (Application, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	app, ok := r.apps[scheme]
	return app, ok
}

// Schemes returns the registered schemes, sorted.
func (r *Registry) Schemes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.apps))
	for s := range r.apps {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
