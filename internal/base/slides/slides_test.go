package slides

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func grandDeck(t *testing.T) *Deck {
	t.Helper()
	d := NewDeck("grandrounds.ppt")
	d.AddSlide("Heart Failure Management", "Loop diuretics remain first-line therapy")
	s2 := d.AddSlide("Electrolyte Monitoring", "Check K+ and Mg2+ daily during diuresis")
	s2.Shapes = append(s2.Shapes, Shape{Kind: KindTextBox, Text: "Target K+ > 4.0"})
	d.AddSlide("", "Slide with only a body")
	return d
}

func TestDeckStructure(t *testing.T) {
	d := grandDeck(t)
	if len(d.Slides) != 3 {
		t.Fatalf("slides = %d", len(d.Slides))
	}
	if d.Slides[0].Title() != "Heart Failure Management" {
		t.Errorf("title = %q", d.Slides[0].Title())
	}
	if d.Slides[2].Title() != "" {
		t.Errorf("untitled slide title = %q", d.Slides[2].Title())
	}
}

func TestShapeLookup(t *testing.T) {
	d := grandDeck(t)
	sh, err := d.Shape(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Kind != KindTextBox || sh.Text != "Target K+ > 4.0" {
		t.Fatalf("shape = %+v", sh)
	}
	if _, err := d.Shape(0, 1); err == nil {
		t.Error("Shape(0,1) succeeded")
	}
	if _, err := d.Shape(4, 1); err == nil {
		t.Error("Shape(4,1) succeeded")
	}
	if _, err := d.Shape(1, 3); err == nil {
		t.Error("Shape(1,3) succeeded")
	}
}

func TestShapeKindString(t *testing.T) {
	if KindTitle.String() != "title" || KindBody.String() != "body" || KindTextBox.String() != "textbox" {
		t.Error("kind names wrong")
	}
	if ShapeKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestLocRoundTrip(t *testing.T) {
	l := Loc{Slide: 3, Shape: 2}
	if l.String() != "slide3/shape2" {
		t.Fatalf("String = %q", l.String())
	}
	back, err := ParseLoc(l.String())
	if err != nil || back != l {
		t.Fatalf("round trip = %v, %v", back, err)
	}
}

func TestParseLocErrors(t *testing.T) {
	bad := []string{"", "slide1", "slide1shape2", "slideX/shape1", "slide1/shapeX", "slide0/shape1", "slide1/shape0", "s1/sh2"}
	for _, p := range bad {
		if _, err := ParseLoc(p); err == nil {
			t.Errorf("ParseLoc(%q) succeeded", p)
		}
	}
}

func appWithDeck(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if err := a.AddDeck(grandDeck(t)); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppFlow(t *testing.T) {
	a := appWithDeck(t)
	if a.Scheme() != Scheme {
		t.Fatal("bad scheme")
	}
	if err := a.AddDeck(NewDeck("")); err == nil {
		t.Error("unnamed deck accepted")
	}
	if err := a.AddDeck(NewDeck("grandrounds.ppt")); err == nil {
		t.Error("duplicate deck accepted")
	}
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("selection before open")
	}
	if err := a.Select(Loc{1, 1}); err == nil {
		t.Fatal("Select before Open succeeded")
	}
	if err := a.Open("grandrounds.ppt"); err != nil {
		t.Fatal(err)
	}
	if err := a.Select(Loc{2, 3}); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil || addr.Path != "slide2/shape3" {
		t.Fatalf("selection = %v, %v", addr, err)
	}
	if err := a.Select(Loc{9, 1}); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad Select = %v", err)
	}
}

func TestAppGoToAndExtract(t *testing.T) {
	a := appWithDeck(t)
	addr := base.Address{Scheme: Scheme, File: "grandrounds.ppt", Path: "slide2/shape3"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Target K+ > 4.0" {
		t.Errorf("Content = %q", el.Content)
	}
	want := "Electrolyte Monitoring | Check K+ and Mg2+ daily during diuresis | Target K+ > 4.0"
	if el.Context != want {
		t.Errorf("Context = %q", el.Context)
	}
	content, err := a.ExtractContent(addr)
	if err != nil || content != el.Content {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(addr)
	if err != nil || ctx != want {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
}

func TestAppGoToErrors(t *testing.T) {
	a := appWithDeck(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "pdf", File: "grandrounds.ppt", Path: "slide1/shape1"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "slide1/shape1"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "grandrounds.ppt", Path: "garbage"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "grandrounds.ppt", Path: "slide9/shape1"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}
