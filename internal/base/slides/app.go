package slides

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "slides"

// App is the presentation base application: a deck library plus viewer
// state (open deck, selected shape).
type App struct {
	mu    sync.Mutex
	decks map[string]*Deck

	openDeck *Deck
	selected Loc
	hasSel   bool
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{decks: make(map[string]*Deck)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-present" }

// AddDeck registers a deck in the library.
func (a *App) AddDeck(d *Deck) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Name == "" {
		return fmt.Errorf("slides: deck needs a name")
	}
	if _, ok := a.decks[d.Name]; ok {
		return fmt.Errorf("slides: deck %q already in library", d.Name)
	}
	a.decks[d.Name] = d
	return nil
}

// Deck looks up a deck by name.
func (a *App) Deck(name string) (*Deck, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.decks[name]
	return d, ok
}

// Open makes a deck current without a selection.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.decks[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openDeck, a.hasSel = d, false
	return nil
}

// Select simulates the user clicking a shape in the open deck.
func (a *App) Select(l Loc) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDeck == nil {
		return fmt.Errorf("slides: no open deck")
	}
	if _, err := a.openDeck.Shape(l.Slide, l.Shape); err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected, a.hasSel = l, true
	return nil
}

// CurrentSelection implements base.Application.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDeck == nil || !a.hasSel {
		return base.Address{}, base.ErrNoSelection
	}
	return base.Address{Scheme: Scheme, File: a.openDeck.Name, Path: a.selected.String()}, nil
}

func (a *App) locate(addr base.Address) (*Deck, Loc, Shape, error) {
	if addr.Scheme != Scheme {
		return nil, Loc{}, Shape{}, fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	d, ok := a.decks[addr.File]
	if !ok {
		return nil, Loc{}, Shape{}, fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	l, err := ParseLoc(addr.Path)
	if err != nil {
		return nil, Loc{}, Shape{}, fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	sh, err := d.Shape(l.Slide, l.Shape)
	if err != nil {
		return nil, Loc{}, Shape{}, fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	return d, l, sh, nil
}

// GoTo implements base.Application: open the deck, jump to the slide,
// select the shape.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, sh, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openDeck, a.selected, a.hasSel = d, l, true
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: d.Name, Path: l.String()},
		Content: sh.Text,
		Context: a.slideContextLocked(d, l.Slide),
	}, nil
}

// ExtractContent implements base.ContentExtractor.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, sh, err := a.locate(addr)
	return sh.Text, err
}

// ExtractContext implements base.ContextProvider: all text on the shape's
// slide.
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, l, _, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	return a.slideContextLocked(d, l.Slide), nil
}

func (a *App) slideContextLocked(d *Deck, slide int) string {
	s := d.Slides[slide-1]
	var parts []string
	for _, sh := range s.Shapes {
		if sh.Text != "" {
			parts = append(parts, sh.Text)
		}
	}
	return strings.Join(parts, " | ")
}
