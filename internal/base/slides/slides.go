// Package slides is the presentation base substrate: decks of slides
// holding shapes (title, body, text boxes), addressed by slide and shape
// index — standing in for the paper's Microsoft PowerPoint marks.
package slides

import (
	"fmt"
	"strconv"
	"strings"
)

// ShapeKind classifies shapes on a slide.
type ShapeKind int

const (
	// KindTitle is the slide title placeholder.
	KindTitle ShapeKind = iota
	// KindBody is the main content placeholder.
	KindBody
	// KindTextBox is a free-floating text box.
	KindTextBox
)

// String names the kind.
func (k ShapeKind) String() string {
	switch k {
	case KindTitle:
		return "title"
	case KindBody:
		return "body"
	case KindTextBox:
		return "textbox"
	default:
		return fmt.Sprintf("ShapeKind(%d)", int(k))
	}
}

// Shape is one addressable element on a slide.
type Shape struct {
	Kind ShapeKind
	Text string
}

// Slide holds shapes in z-order.
type Slide struct {
	Shapes []Shape
}

// Title returns the text of the slide's first title shape, if any.
func (s *Slide) Title() string {
	for _, sh := range s.Shapes {
		if sh.Kind == KindTitle {
			return sh.Text
		}
	}
	return ""
}

// Deck is a named presentation.
type Deck struct {
	// Name is the deck's identity in the application library.
	Name   string
	Slides []*Slide
}

// NewDeck returns an empty deck.
func NewDeck(name string) *Deck { return &Deck{Name: name} }

// AddSlide appends a slide with a title and body, returning it for further
// shape additions.
func (d *Deck) AddSlide(title, body string) *Slide {
	s := &Slide{}
	if title != "" {
		s.Shapes = append(s.Shapes, Shape{Kind: KindTitle, Text: title})
	}
	if body != "" {
		s.Shapes = append(s.Shapes, Shape{Kind: KindBody, Text: body})
	}
	d.Slides = append(d.Slides, s)
	return s
}

// Shape returns the j-th (1-based) shape of the i-th slide.
func (d *Deck) Shape(slide, shape int) (Shape, error) {
	if slide < 1 || slide > len(d.Slides) {
		return Shape{}, fmt.Errorf("slides: no slide %d in %q (%d slides)", slide, d.Name, len(d.Slides))
	}
	s := d.Slides[slide-1]
	if shape < 1 || shape > len(s.Shapes) {
		return Shape{}, fmt.Errorf("slides: no shape %d on slide %d of %q", shape, slide, d.Name)
	}
	return s.Shapes[shape-1], nil
}

// Loc addresses a shape: 1-based slide and shape indices.
type Loc struct {
	Slide, Shape int
}

// String renders the address path: "slide3/shape2".
func (l Loc) String() string {
	return fmt.Sprintf("slide%d/shape%d", l.Slide, l.Shape)
}

// ParseLoc parses an address path produced by Loc.String.
func ParseLoc(path string) (Loc, error) {
	a, b, found := strings.Cut(path, "/")
	if !found {
		return Loc{}, fmt.Errorf("slides: path %q must be slideN/shapeM", path)
	}
	sl, ok1 := strings.CutPrefix(a, "slide")
	sh, ok2 := strings.CutPrefix(b, "shape")
	if !ok1 || !ok2 {
		return Loc{}, fmt.Errorf("slides: path %q must be slideN/shapeM", path)
	}
	slide, err := strconv.Atoi(sl)
	if err != nil || slide < 1 {
		return Loc{}, fmt.Errorf("slides: path %q: bad slide number", path)
	}
	shape, err := strconv.Atoi(sh)
	if err != nil || shape < 1 {
		return Loc{}, fmt.Errorf("slides: path %q: bad shape number", path)
	}
	return Loc{Slide: slide, Shape: shape}, nil
}
