package htmldoc

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "html"

// App is the browser-like base application: a page library plus viewer
// state (open page, highlighted element).
type App struct {
	mu    sync.Mutex
	pages map[string]*Page

	openPage *Page
	selected *Node
	// selSpan/selHasSpan carry a character-range selection within the
	// selected element (span marks, §5).
	selSpan    SpanAddress
	selHasSpan bool
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{pages: make(map[string]*Page)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-browser" }

// LoadString parses HTML and registers the page under the given name.
func (a *App) LoadString(name, src string) (*Page, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("htmldoc: page needs a name")
	}
	if _, ok := a.pages[name]; ok {
		return nil, fmt.Errorf("htmldoc: page %q already in library", name)
	}
	p := Parse(name, src)
	a.pages[name] = p
	return p, nil
}

// Page looks up a page by name.
func (a *App) Page(name string) (*Page, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pages[name]
	return p, ok
}

// Open makes a page current without a selection.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pages[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openPage, a.selected = p, nil
	return nil
}

// SelectPath simulates the user selecting the element at a path or anchor
// in the open page. A "~start-end" suffix selects a character span within
// the element's text.
func (a *App) SelectPath(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openPage == nil {
		return fmt.Errorf("htmldoc: no open page")
	}
	sa, hasSpan, err := ParseSpanPath(path)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	n, _, err := a.openPage.ResolveSpan(path)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected = n
	a.selSpan, a.selHasSpan = sa, hasSpan
	return nil
}

// SelectText simulates the user highlighting the first occurrence of
// needle within the element at the path — the gesture that creates span
// marks.
func (a *App) SelectText(path, needle string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openPage == nil {
		return fmt.Errorf("htmldoc: no open page")
	}
	n, err := a.openPage.ResolvePath(path)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	sa, err := a.openPage.FindTextSpan(n, needle)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected = n
	a.selSpan, a.selHasSpan = sa, true
	return nil
}

// SelectNode selects a node of the open page directly.
func (a *App) SelectNode(n *Node) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openPage == nil {
		return fmt.Errorf("htmldoc: no open page")
	}
	if _, err := a.openPage.PathTo(n); err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected = n
	a.selHasSpan = false
	return nil
}

// CurrentSelection implements base.Application. The address uses the
// canonical element path even when the selection was made by anchor, so
// marks stay valid if the anchor attribute is removed later.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openPage == nil || a.selected == nil {
		return base.Address{}, base.ErrNoSelection
	}
	path, err := a.openPage.PathTo(a.selected)
	if err != nil {
		return base.Address{}, err
	}
	if a.selHasSpan {
		path = SpanAddress{ElementPath: path, Start: a.selSpan.Start, End: a.selSpan.End}.String()
	}
	return base.Address{Scheme: Scheme, File: a.openPage.Name, Path: path}, nil
}

func (a *App) locate(addr base.Address) (*Page, *Node, string, SpanAddress, bool, error) {
	if addr.Scheme != Scheme {
		return nil, nil, "", SpanAddress{}, false, fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	p, ok := a.pages[addr.File]
	if !ok {
		return nil, nil, "", SpanAddress{}, false, fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	sa, hasSpan, err := ParseSpanPath(addr.Path)
	if err != nil {
		return nil, nil, "", SpanAddress{}, false, fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	n, content, err := p.ResolveSpan(addr.Path)
	if err != nil {
		return nil, nil, "", SpanAddress{}, false, fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	return p, n, content, sa, hasSpan, nil
}

// GoTo implements base.Application: open the page, scroll to the element,
// highlight it (or the character span within it).
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, n, content, sa, hasSpan, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openPage, a.selected = p, n
	a.selSpan, a.selHasSpan = sa, hasSpan
	canonical, err := p.PathTo(n)
	if err != nil {
		return base.Element{}, err
	}
	context := contextOf(n)
	if hasSpan {
		canonical = SpanAddress{ElementPath: canonical, Start: sa.Start, End: sa.End}.String()
		context = n.DeepText()
	}
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: p.Name, Path: canonical},
		Content: content,
		Context: context,
	}, nil
}

// ExtractContent implements base.ContentExtractor.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, content, _, _, err := a.locate(addr)
	return content, err
}

// ExtractContext implements base.ContextProvider: the parent element's text
// (or the whole element's text for a span address).
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, n, _, _, hasSpan, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	if hasSpan {
		return n.DeepText(), nil
	}
	return contextOf(n), nil
}

func contextOf(n *Node) string {
	if n.Parent == nil {
		return n.DeepText()
	}
	var parts []string
	for _, sib := range n.Parent.Children {
		if t := sib.DeepText(); t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " | ")
}
