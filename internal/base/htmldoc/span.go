package htmldoc

import (
	"fmt"
	"strconv"
	"strings"
)

// Span marks (§5: "Most annotation systems provide point and span marks for
// a specific place or a region in a document"). An HTML span address is an
// element path followed by "~start-end": a half-open character range
// [start, end) into the element's DeepText. Example:
//
//	/html[1]/body[1]/p[2]~10-24
//
// Anchor forms compose too: "#dosing~0-9" marks the first nine characters
// of the anchored element.

// SpanAddress is a parsed span path.
type SpanAddress struct {
	// ElementPath is the node path or anchor reference.
	ElementPath string
	// Start and End delimit the character range [Start, End) in the
	// element's DeepText.
	Start, End int
}

// String renders the span path.
func (s SpanAddress) String() string {
	return fmt.Sprintf("%s~%d-%d", s.ElementPath, s.Start, s.End)
}

// ParseSpanPath splits a path into its element part and optional span. The
// second result reports whether a span suffix was present.
func ParseSpanPath(path string) (SpanAddress, bool, error) {
	i := strings.LastIndexByte(path, '~')
	if i < 0 {
		return SpanAddress{ElementPath: path}, false, nil
	}
	elem, spanText := path[:i], path[i+1:]
	a, b, found := strings.Cut(spanText, "-")
	if !found {
		return SpanAddress{}, false, fmt.Errorf("htmldoc: span %q must be start-end", spanText)
	}
	start, err := strconv.Atoi(a)
	if err != nil || start < 0 {
		return SpanAddress{}, false, fmt.Errorf("htmldoc: span %q: bad start", spanText)
	}
	end, err := strconv.Atoi(b)
	if err != nil || end < start {
		return SpanAddress{}, false, fmt.Errorf("htmldoc: span %q: bad end", spanText)
	}
	if elem == "" {
		return SpanAddress{}, false, fmt.Errorf("htmldoc: span %q lacks an element path", path)
	}
	return SpanAddress{ElementPath: elem, Start: start, End: end}, true, nil
}

// ResolveSpan resolves a span path to its node and the spanned text.
func (p *Page) ResolveSpan(path string) (*Node, string, error) {
	sa, hasSpan, err := ParseSpanPath(path)
	if err != nil {
		return nil, "", err
	}
	n, err := p.ResolvePath(sa.ElementPath)
	if err != nil {
		return nil, "", err
	}
	text := n.DeepText()
	if !hasSpan {
		return n, text, nil
	}
	if sa.End > len(text) {
		return nil, "", fmt.Errorf("htmldoc: span %d-%d exceeds element text length %d", sa.Start, sa.End, len(text))
	}
	return n, text[sa.Start:sa.End], nil
}

// FindTextSpan locates the first occurrence of needle in the element's
// DeepText and returns the corresponding span address with a canonical
// element path — the usual way span marks are created from a user's text
// selection.
func (p *Page) FindTextSpan(n *Node, needle string) (SpanAddress, error) {
	path, err := p.PathTo(n)
	if err != nil {
		return SpanAddress{}, err
	}
	text := n.DeepText()
	i := strings.Index(text, needle)
	if i < 0 {
		return SpanAddress{}, fmt.Errorf("htmldoc: text %q not found in element %s", needle, path)
	}
	return SpanAddress{ElementPath: path, Start: i, End: i + len(needle)}, nil
}
