// Package htmldoc is the web-page base substrate: a small HTML parser and a
// DOM addressed by element paths or anchor names, standing in for the
// paper's HTML marks resolved through a web browser.
package htmldoc

import (
	"strings"
)

// TokenKind classifies tokens produced by the tokenizer.
type TokenKind int

const (
	// TokText is character data.
	TokText TokenKind = iota
	// TokStartTag is an opening tag (possibly self-closing).
	TokStartTag
	// TokEndTag is a closing tag.
	TokEndTag
	// TokComment is an HTML comment (content without delimiters).
	TokComment
	// TokDoctype is a <!DOCTYPE ...> declaration.
	TokDoctype
)

// Token is one lexical item of an HTML document.
type Token struct {
	Kind TokenKind
	// Data is tag name (lowercased), text content, or comment body.
	Data string
	// Attrs holds attributes of start tags.
	Attrs map[string]string
	// SelfClosing marks <tag/>.
	SelfClosing bool
}

// voidElements never have content or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow content verbatim until their end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Tokenize splits HTML text into tokens. The tokenizer is forgiving, like a
// browser: malformed constructs become text rather than errors.
func Tokenize(src string) []Token {
	var out []Token
	i := 0
	n := len(src)
	emitText := func(s string) {
		if s != "" {
			out = append(out, Token{Kind: TokText, Data: decodeEntities(s)})
		}
	}
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			emitText(src[i:])
			break
		}
		emitText(src[i : i+lt])
		i += lt
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				out = append(out, Token{Kind: TokComment, Data: src[i+4:]})
				i = n
			} else {
				out = append(out, Token{Kind: TokComment, Data: src[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				emitText(src[i:])
				i = n
			} else {
				out = append(out, Token{Kind: TokDoctype, Data: strings.TrimSpace(src[i+2 : i+end])})
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				emitText(src[i:])
				i = n
			} else {
				name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
				if name != "" {
					out = append(out, Token{Kind: TokEndTag, Data: name})
				}
				i += end + 1
			}
		default:
			tok, consumed, ok := lexStartTag(src[i:])
			if !ok {
				emitText("<")
				i++
				continue
			}
			out = append(out, tok)
			i += consumed
			// Raw-text elements: swallow until the matching end tag.
			if rawTextElements[tok.Data] && !tok.SelfClosing {
				closer := "</" + tok.Data
				rest := strings.ToLower(src[i:])
				idx := strings.Index(rest, closer)
				if idx < 0 {
					emitText(src[i:])
					i = n
					continue
				}
				if idx > 0 {
					out = append(out, Token{Kind: TokText, Data: src[i : i+idx]})
				}
				gt := strings.IndexByte(src[i+idx:], '>')
				if gt < 0 {
					i = n
					continue
				}
				out = append(out, Token{Kind: TokEndTag, Data: tok.Data})
				i += idx + gt + 1
			}
		}
	}
	return out
}

// lexStartTag parses "<name attr=... >" returning the token, bytes
// consumed, and whether it looked like a tag at all.
func lexStartTag(s string) (Token, int, bool) {
	// s starts with '<'
	if len(s) < 2 || !isNameStart(s[1]) {
		return Token{}, 0, false
	}
	i := 1
	start := i
	for i < len(s) && isNameChar(s[i]) {
		i++
	}
	tok := Token{Kind: TokStartTag, Data: strings.ToLower(s[start:i]), Attrs: map[string]string{}}
	for {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			return tok, i, true // unterminated tag: accept what we have
		}
		if s[i] == '>' {
			return tok, i + 1, true
		}
		if strings.HasPrefix(s[i:], "/>") {
			tok.SelfClosing = true
			return tok, i + 2, true
		}
		// Attribute name.
		nameStart := i
		for i < len(s) && !isSpace(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
			i++
		}
		name := strings.ToLower(s[nameStart:i])
		if name == "" {
			i++ // skip stray character
			continue
		}
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			var val string
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				valStart := i
				for i < len(s) && s[i] != quote {
					i++
				}
				val = s[valStart:i]
				if i < len(s) {
					i++ // closing quote
				}
			} else {
				valStart := i
				for i < len(s) && !isSpace(s[i]) && s[i] != '>' {
					i++
				}
				val = s[valStart:i]
			}
			tok.Attrs[name] = decodeEntities(val)
		} else {
			tok.Attrs[name] = ""
		}
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':'
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": "\"", "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "ndash": "–",
}

// decodeEntities replaces named and numeric character references.
func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if rep, ok := entities[name]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(name, "#") {
			if r, ok := parseNumericRef(name[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}

func parseNumericRef(s string) (rune, bool) {
	if s == "" {
		return 0, false
	}
	baseN := 10
	if s[0] == 'x' || s[0] == 'X' {
		baseN = 16
		s = s[1:]
		if s == "" {
			return 0, false
		}
	}
	var r rune
	for _, c := range s {
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case baseN == 16 && c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case baseN == 16 && c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, false
		}
		r = r*rune(baseN) + d
		if r > 0x10FFFF {
			return 0, false
		}
	}
	return r, true
}
