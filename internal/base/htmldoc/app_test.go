package htmldoc

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func appWithGuideline(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if _, err := a.LoadString("guidelines.html", guidelinePage); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppIdentityAndLibrary(t *testing.T) {
	a := NewApp()
	if a.Scheme() != Scheme || a.Name() == "" {
		t.Fatal("bad identity")
	}
	if _, err := a.LoadString("", "<p>x</p>"); err == nil {
		t.Error("unnamed page accepted")
	}
	if _, err := a.LoadString("p1", "<p>x</p>"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadString("p1", "<p>y</p>"); err == nil {
		t.Error("duplicate page accepted")
	}
	if _, ok := a.Page("p1"); !ok {
		t.Error("page lookup failed")
	}
}

func TestSelectionFlow(t *testing.T) {
	a := appWithGuideline(t)
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("selection before open")
	}
	if err := a.SelectPath("#top"); err == nil {
		t.Fatal("SelectPath before Open succeeded")
	}
	if err := a.Open("nope"); !errors.Is(err, base.ErrUnknownDocument) {
		t.Fatalf("Open missing = %v", err)
	}
	if err := a.Open("guidelines.html"); err != nil {
		t.Fatal(err)
	}
	if err := a.SelectPath("#dosing-para"); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	// Anchor selections canonicalize to element paths.
	if addr.Path != "/html[1]/body[1]/p[3]" {
		t.Fatalf("canonical path = %q", addr.Path)
	}
	if err := a.SelectPath("#absent"); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad SelectPath = %v", err)
	}
}

func TestSelectNode(t *testing.T) {
	a := appWithGuideline(t)
	a.Open("guidelines.html")
	p, _ := a.Page("guidelines.html")
	li := p.Find(func(n *Node) bool { return n.Tag == "li" })[1]
	if err := a.SelectNode(li); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil || addr.Path != "/html[1]/body[1]/ul[1]/li[2]" {
		t.Fatalf("selection = %v, %v", addr, err)
	}
	foreign := Parse("o", "<body><p>x</p></body>").Root.Children[0]
	if err := a.SelectNode(foreign); err == nil {
		t.Fatal("foreign node accepted")
	}
}

func TestGoToByPathAndAnchor(t *testing.T) {
	a := appWithGuideline(t)
	el, err := a.GoTo(base.Address{Scheme: Scheme, File: "guidelines.html", Path: "/html[1]/body[1]/p[2]"})
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Loop diuretics are first-line for congestion." {
		t.Errorf("Content = %q", el.Content)
	}
	// Resolving by anchor returns the canonical path.
	el2, err := a.GoTo(base.Address{Scheme: Scheme, File: "guidelines.html", Path: "#dosing-para"})
	if err != nil {
		t.Fatal(err)
	}
	if el2.Address.Path != "/html[1]/body[1]/p[3]" {
		t.Errorf("anchor canonicalized to %q", el2.Address.Path)
	}
	sel, err := a.CurrentSelection()
	if err != nil || sel.Path != el2.Address.Path {
		t.Errorf("selection = %v, %v", sel, err)
	}
}

func TestGoToErrors(t *testing.T) {
	a := appWithGuideline(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "text", File: "guidelines.html", Path: "#top"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "#top"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "guidelines.html", Path: "no-slash-no-hash"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "guidelines.html", Path: "/html[1]/body[1]/table[1]"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}

func TestExtract(t *testing.T) {
	a := appWithGuideline(t)
	addr := base.Address{Scheme: Scheme, File: "guidelines.html", Path: "/html[1]/body[1]/ul[1]/li[1]"}
	content, err := a.ExtractContent(addr)
	if err != nil || content != "Monitor potassium" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(addr)
	if err != nil || ctx != "Monitor potassium | Monitor renal function" {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("extraction moved the viewer")
	}
}
