package htmldoc

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func TestParseSpanPath(t *testing.T) {
	sa, has, err := ParseSpanPath("/html[1]/body[1]/p[2]~10-24")
	if err != nil || !has {
		t.Fatalf("parse: %v, %v", has, err)
	}
	if sa.ElementPath != "/html[1]/body[1]/p[2]" || sa.Start != 10 || sa.End != 24 {
		t.Fatalf("sa = %+v", sa)
	}
	if sa.String() != "/html[1]/body[1]/p[2]~10-24" {
		t.Fatalf("String = %q", sa.String())
	}
	// No span suffix.
	_, has, err = ParseSpanPath("#anchor")
	if err != nil || has {
		t.Fatalf("anchor parse: %v, %v", has, err)
	}
	// Anchors compose with spans.
	sa, has, err = ParseSpanPath("#anchor~0-5")
	if err != nil || !has || sa.ElementPath != "#anchor" {
		t.Fatalf("anchor span = %+v, %v, %v", sa, has, err)
	}
}

func TestParseSpanPathErrors(t *testing.T) {
	for _, bad := range []string{"/p[1]~", "/p[1]~5", "/p[1]~a-b", "/p[1]~-1-3", "/p[1]~5-2", "~1-2"} {
		if _, _, err := ParseSpanPath(bad); err == nil {
			t.Errorf("ParseSpanPath(%q) succeeded", bad)
		}
	}
}

func TestResolveSpan(t *testing.T) {
	p := guideline(t)
	// p[1] text: "Initial assessment should include electrolytes."
	n, text, err := p.ResolveSpan("/html[1]/body[1]/p[1]~8-18")
	if err != nil {
		t.Fatal(err)
	}
	if text != "assessment" {
		t.Fatalf("span text = %q", text)
	}
	if n.Tag != "p" {
		t.Fatalf("node = %q", n.Tag)
	}
	// Out-of-range span.
	if _, _, err := p.ResolveSpan("/html[1]/body[1]/p[1]~0-9999"); err == nil {
		t.Fatal("oversized span accepted")
	}
	// No span: whole text.
	_, whole, err := p.ResolveSpan("/html[1]/body[1]/p[1]")
	if err != nil || whole != "Initial assessment should include electrolytes." {
		t.Fatalf("whole = %q, %v", whole, err)
	}
}

func TestFindTextSpan(t *testing.T) {
	p := guideline(t)
	n, _ := p.ByID("dosing-para")
	sa, err := p.FindTextSpan(n, "40mg IV")
	if err != nil {
		t.Fatal(err)
	}
	_, text, err := p.ResolveSpan(sa.String())
	if err != nil || text != "40mg IV" {
		t.Fatalf("round trip = %q, %v", text, err)
	}
	if _, err := p.FindTextSpan(n, "absent text"); err == nil {
		t.Fatal("absent text found")
	}
}

func TestAppSpanSelectionFlow(t *testing.T) {
	a := appWithGuideline(t)
	a.Open("guidelines.html")
	if err := a.SelectText("#dosing-para", "40mg IV"); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if addr.Path != "/html[1]/body[1]/p[3]~11-18" {
		t.Fatalf("span selection = %q", addr.Path)
	}
	// Resolving the span mark returns just the spanned text, with the
	// whole element as context.
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "40mg IV" {
		t.Fatalf("Content = %q", el.Content)
	}
	if el.Context != "Furosemide 40mg IV is a typical starting dose." {
		t.Fatalf("Context = %q", el.Context)
	}
	if el.Address.Path != addr.Path {
		t.Fatalf("canonical = %q", el.Address.Path)
	}
	// ExtractContent without viewer movement.
	content, err := a.ExtractContent(addr)
	if err != nil || content != "40mg IV" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(addr)
	if err != nil || ctx != "Furosemide 40mg IV is a typical starting dose." {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
}

func TestAppSelectPathWithSpan(t *testing.T) {
	a := appWithGuideline(t)
	a.Open("guidelines.html")
	if err := a.SelectPath("#dosing-para~0-10"); err != nil {
		t.Fatal(err)
	}
	addr, _ := a.CurrentSelection()
	// Anchor selections canonicalize to the element path, span retained.
	if addr.Path != "/html[1]/body[1]/p[3]~0-10" {
		t.Fatalf("path = %q", addr.Path)
	}
	el, err := a.GoTo(addr)
	if err != nil || el.Content != "Furosemide" {
		t.Fatalf("GoTo = %q, %v", el.Content, err)
	}
	// Errors propagate.
	if err := a.SelectPath("#dosing-para~5-2"); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad span select = %v", err)
	}
	if err := a.SelectText("#dosing-para", "unfindable"); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("bad SelectText = %v", err)
	}
	if _, err := a.GoTo(base.Address{Scheme: Scheme, File: "guidelines.html", Path: "#dosing-para~0-9999"}); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("oversized span GoTo = %v", err)
	}
}

func TestSpanSelectClearedByNodeSelect(t *testing.T) {
	a := appWithGuideline(t)
	a.Open("guidelines.html")
	if err := a.SelectText("#dosing-para", "40mg"); err != nil {
		t.Fatal(err)
	}
	p, _ := a.Page("guidelines.html")
	h1 := p.Find(func(n *Node) bool { return n.Tag == "h1" })[0]
	if err := a.SelectNode(h1); err != nil {
		t.Fatal(err)
	}
	addr, _ := a.CurrentSelection()
	if addr.Path != "/html[1]/body[1]/h1[1]" {
		t.Fatalf("node select kept stale span: %q", addr.Path)
	}
}
