package htmldoc

import (
	"testing"
)

// FuzzParse: the HTML parser must never panic and must produce a DOM whose
// PathTo/ResolvePath round trip holds for every node — on any input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<p>hello</p>",
		"<html><body><p>a<p>b<ul><li>1<li>2</ul></body></html>",
		"<div class=x data-y='z'>nested <b>bold</b> tail</div>",
		"<!DOCTYPE html><!-- c --><script>if(a<b){}</script>ok",
		"<a href=\"x\">&amp;&#65;&bogus;</a>",
		"<<<>><br/><img src=x><p",
		"</closes></nothing><p>recover</p>",
		"<style>body{color:red}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p := Parse("fuzz.html", src)
		if p == nil || p.Root == nil {
			t.Fatal("nil page")
		}
		p.Root.Walk(func(n *Node) bool {
			path, err := p.PathTo(n)
			if err != nil {
				t.Fatalf("PathTo: %v", err)
			}
			back, err := p.ResolvePath(path)
			if err != nil || back != n {
				t.Fatalf("round trip of %q failed: %v", path, err)
			}
			return true
		})
	})
}

// FuzzTokenize: the tokenizer must terminate and never panic.
func FuzzTokenize(f *testing.F) {
	f.Add("<p a='b' c=d>&lt;x&gt;</p>")
	f.Add("<script>raw < text</script>")
	f.Add("&#x110000;&#xZZ;&#")
	f.Fuzz(func(t *testing.T, src string) {
		toks := Tokenize(src)
		for _, tok := range toks {
			if tok.Kind == TokStartTag && tok.Data == "" {
				t.Fatal("empty tag name")
			}
		}
	})
}
