package htmldoc

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<p class="intro">Hello <b>world</b></p>`)
	want := []TokenKind{TokStartTag, TokText, TokStartTag, TokText, TokEndTag, TokEndTag}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (%v)", i, got[i], want[i], toks)
		}
	}
	if toks[0].Data != "p" || toks[0].Attrs["class"] != "intro" {
		t.Errorf("start tag = %+v", toks[0])
	}
	if toks[1].Data != "Hello " {
		t.Errorf("text = %q", toks[1].Data)
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := Tokenize(`<a href='single' id=unquoted disabled data-x="a&amp;b">x</a>`)
	attrs := toks[0].Attrs
	if attrs["href"] != "single" {
		t.Errorf("single-quoted attr = %q", attrs["href"])
	}
	if attrs["id"] != "unquoted" {
		t.Errorf("unquoted attr = %q", attrs["id"])
	}
	if v, ok := attrs["disabled"]; !ok || v != "" {
		t.Errorf("boolean attr = %q, %v", v, ok)
	}
	if attrs["data-x"] != "a&b" {
		t.Errorf("entity in attr = %q", attrs["data-x"])
	}
}

func TestTokenizeSelfClosingAndVoid(t *testing.T) {
	toks := Tokenize(`<br/><img src="x.png">`)
	if !toks[0].SelfClosing || toks[0].Data != "br" {
		t.Errorf("self-closing = %+v", toks[0])
	}
	if toks[1].Data != "img" || toks[1].Attrs["src"] != "x.png" {
		t.Errorf("void tag = %+v", toks[1])
	}
}

func TestTokenizeCommentDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- a comment -->text`)
	if toks[0].Kind != TokDoctype || toks[0].Data != "DOCTYPE html" {
		t.Errorf("doctype = %+v", toks[0])
	}
	if toks[1].Kind != TokComment || toks[1].Data != " a comment " {
		t.Errorf("comment = %+v", toks[1])
	}
	if toks[2].Kind != TokText || toks[2].Data != "text" {
		t.Errorf("text = %+v", toks[2])
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	toks := Tokenize(`<!-- runs off the end`)
	if len(toks) != 1 || toks[0].Kind != TokComment {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizeRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a < b) { x(); }</script><p>after</p>`)
	if toks[0].Kind != TokStartTag || toks[0].Data != "script" {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Kind != TokText || toks[1].Data != "if (a < b) { x(); }" {
		t.Errorf("raw text = %+v", toks[1])
	}
	if toks[2].Kind != TokEndTag || toks[2].Data != "script" {
		t.Errorf("end = %+v", toks[2])
	}
	if toks[3].Kind != TokStartTag || toks[3].Data != "p" {
		t.Errorf("following content lost: %v", toks)
	}
}

func TestTokenizeUnclosedRawText(t *testing.T) {
	toks := Tokenize(`<style>body { color: red }`)
	if len(toks) != 2 || toks[1].Kind != TokText {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizeStrayAngle(t *testing.T) {
	toks := Tokenize(`3 < 5 is true`)
	// "<" followed by a non-name char is text.
	text := ""
	for _, tok := range toks {
		if tok.Kind == TokText {
			text += tok.Data
		} else {
			t.Fatalf("unexpected token %+v", tok)
		}
	}
	if text != "3 < 5 is true" {
		t.Errorf("text = %q", text)
	}
}

func TestTokenizeCaseInsensitiveTags(t *testing.T) {
	toks := Tokenize(`<DIV CLASS="Big">x</DIV>`)
	if toks[0].Data != "div" {
		t.Errorf("tag = %q", toks[0].Data)
	}
	if toks[0].Attrs["class"] != "Big" {
		t.Errorf("attr name not lowercased or value changed: %+v", toks[0].Attrs)
	}
	if toks[2].Data != "div" {
		t.Errorf("end tag = %q", toks[2].Data)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;tag&gt;", "<tag>"},
		{"&quot;q&quot;", `"q"`},
		{"&#65;&#x42;", "AB"},
		{"&unknown;", "&unknown;"},
		{"no entities", "no entities"},
		{"dangling &", "dangling &"},
		{"&#xZZ;", "&#xZZ;"},
		{"&toolongtobeanentityname;", "&toolongtobeanentityname;"},
	}
	for _, c := range cases {
		if got := decodeEntities(c.in); got != c.want {
			t.Errorf("decodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
