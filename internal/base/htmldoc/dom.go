package htmldoc

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is one element of a parsed HTML page.
type Node struct {
	// Tag is the lowercased element name.
	Tag string
	// Attrs holds the element's attributes.
	Attrs map[string]string
	// Text is the concatenated character data directly inside the element.
	Text string
	// Children are child elements in document order.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node
	// segments preserves the interleaving of text runs and child elements
	// so DeepText renders mixed content in document order.
	segments []segment
}

// segment is either a text run or a child element, in document order.
type segment struct {
	text  string
	child *Node
}

// Page is a named, parsed HTML document.
type Page struct {
	// Name is the page's identity in the application library (its URL in
	// the paper's setting).
	Name string
	// Root is the root element (an implicit <html> if the source lacked
	// one).
	Root *Node
}

// elements whose open tag implicitly closes a same-named predecessor.
var implicitClosers = map[string]bool{"p": true, "li": true, "tr": true, "td": true, "th": true, "option": true, "dt": true, "dd": true}

// Parse builds a Page from HTML text, tolerating the tag soup browsers
// tolerate: unclosed elements are closed implicitly; stray end tags are
// dropped.
func Parse(name, src string) *Page {
	root := &Node{Tag: "html", Attrs: map[string]string{}}
	stack := []*Node{root}
	sawExplicitHTML := false

	top := func() *Node { return stack[len(stack)-1] }
	for _, tok := range Tokenize(src) {
		switch tok.Kind {
		case TokText:
			if t := tok.Data; strings.TrimSpace(t) != "" {
				cur := top()
				norm := strings.Join(strings.Fields(t), " ")
				if cur.Text != "" {
					cur.Text += " "
				}
				cur.Text += norm
				cur.segments = append(cur.segments, segment{text: norm})
			}
		case TokStartTag:
			if tok.Data == "html" && !sawExplicitHTML {
				// Merge attributes into the implicit root.
				for k, v := range tok.Attrs {
					root.Attrs[k] = v
				}
				sawExplicitHTML = true
				continue
			}
			if implicitClosers[tok.Data] && top().Tag == tok.Data {
				stack = stack[:len(stack)-1]
			}
			n := &Node{Tag: tok.Data, Attrs: tok.Attrs, Parent: top()}
			top().Children = append(top().Children, n)
			top().segments = append(top().segments, segment{child: n})
			if !tok.SelfClosing && !voidElements[tok.Data] {
				stack = append(stack, n)
			}
		case TokEndTag:
			if tok.Data == "html" {
				stack = stack[:1]
				continue
			}
			// Pop to the matching open element, if present.
			for j := len(stack) - 1; j >= 1; j-- {
				if stack[j].Tag == tok.Data {
					stack = stack[:j]
					break
				}
			}
		case TokComment, TokDoctype:
			// dropped
		}
	}
	return &Page{Name: name, Root: root}
}

// DeepText returns the element's text plus all descendant text, preserving
// the document order of text interleaved with inline elements.
func (n *Node) DeepText() string {
	var parts []string
	var walk func(*Node)
	walk = func(x *Node) {
		for _, seg := range x.segments {
			if seg.child != nil {
				walk(seg.child)
			} else if seg.text != "" {
				parts = append(parts, seg.text)
			}
		}
	}
	walk(n)
	return strings.Join(parts, " ")
}

// Position returns the node's 1-based position among same-tag siblings.
func (n *Node) Position() int {
	if n.Parent == nil {
		return 1
	}
	pos := 0
	for _, sib := range n.Parent.Children {
		if sib.Tag == n.Tag {
			pos++
		}
		if sib == n {
			return pos
		}
	}
	return pos
}

// Walk visits n and descendants in document order; fn returning false
// prunes that subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// ByID returns the element with the given id attribute (anchor addressing).
func (p *Page) ByID(id string) (*Node, bool) {
	var found *Node
	p.Root.Walk(func(n *Node) bool {
		if found != nil {
			return false
		}
		if n.Attrs["id"] == id || (n.Tag == "a" && n.Attrs["name"] == id) {
			found = n
			return false
		}
		return true
	})
	return found, found != nil
}

// Find returns every element for which pred is true, in document order.
func (p *Page) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	p.Root.Walk(func(n *Node) bool {
		if pred(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// PathTo computes the canonical element path from the root to the node:
// "/html[1]/body[1]/p[2]".
func (p *Page) PathTo(n *Node) (string, error) {
	var rev []string
	cur := n
	for cur != nil {
		rev = append(rev, fmt.Sprintf("%s[%d]", cur.Tag, cur.Position()))
		cur = cur.Parent
	}
	var b strings.Builder
	for i := len(rev) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(rev[i])
	}
	path := b.String()
	got, err := p.ResolvePath(path)
	if err != nil || got != n {
		return "", fmt.Errorf("htmldoc: node is not part of page %q", p.Name)
	}
	return path, nil
}

// ResolvePath resolves an element path ("/html[1]/body[1]/p[2]") or an
// anchor reference ("#results") to a node.
func (p *Page) ResolvePath(path string) (*Node, error) {
	if strings.HasPrefix(path, "#") {
		n, ok := p.ByID(path[1:])
		if !ok {
			return nil, fmt.Errorf("htmldoc: no element with anchor %q in %q", path[1:], p.Name)
		}
		return n, nil
	}
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("htmldoc: path %q must be absolute or an anchor", path)
	}
	steps := strings.Split(path[1:], "/")
	if len(steps) == 0 || steps[0] == "" {
		return nil, fmt.Errorf("htmldoc: empty path %q", path)
	}
	cur := p.Root
	for i, step := range steps {
		tag, idx, err := parseStep(step)
		if err != nil {
			return nil, fmt.Errorf("htmldoc: path %q: %w", path, err)
		}
		if i == 0 {
			if tag != cur.Tag || idx != 1 {
				return nil, fmt.Errorf("htmldoc: path root %q does not match page root <%s>", step, cur.Tag)
			}
			continue
		}
		var next *Node
		seen := 0
		for _, c := range cur.Children {
			if c.Tag == tag {
				seen++
				if seen == idx {
					next = c
					break
				}
			}
		}
		if next == nil {
			return nil, fmt.Errorf("htmldoc: no element %s under <%s> in %q", step, cur.Tag, p.Name)
		}
		cur = next
	}
	return cur, nil
}

func parseStep(step string) (string, int, error) {
	tag := step
	idx := 1
	if i := strings.IndexByte(step, '['); i >= 0 {
		if !strings.HasSuffix(step, "]") {
			return "", 0, fmt.Errorf("step %q: unterminated predicate", step)
		}
		tag = step[:i]
		n, err := strconv.Atoi(step[i+1 : len(step)-1])
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("step %q: predicate must be a positive integer", step)
		}
		idx = n
	}
	if tag == "" {
		return "", 0, fmt.Errorf("step %q: missing tag name", step)
	}
	return tag, idx, nil
}
