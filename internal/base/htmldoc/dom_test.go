package htmldoc

import (
	"testing"
)

const guidelinePage = `<!DOCTYPE html>
<html lang="en">
<head><title>HF Guidelines</title></head>
<body>
  <h1 id="top">Heart Failure Guidelines</h1>
  <p>Initial assessment should include electrolytes.</p>
  <p>Loop diuretics are <b>first-line</b> for congestion.</p>
  <ul>
    <li>Monitor potassium</li>
    <li>Monitor renal function</li>
  </ul>
  <a name="dosing"></a>
  <p id="dosing-para">Furosemide 40mg IV is a typical starting dose.</p>
</body>
</html>`

func guideline(t *testing.T) *Page {
	t.Helper()
	return Parse("guidelines.html", guidelinePage)
}

func TestParseTree(t *testing.T) {
	p := guideline(t)
	if p.Root.Tag != "html" || p.Root.Attrs["lang"] != "en" {
		t.Fatalf("root = %q %v", p.Root.Tag, p.Root.Attrs)
	}
	if len(p.Root.Children) != 2 { // head, body
		t.Fatalf("root children = %d", len(p.Root.Children))
	}
	body := p.Root.Children[1]
	if body.Tag != "body" {
		t.Fatalf("second child = %q", body.Tag)
	}
	// h1, p, p, ul, a, p
	if len(body.Children) != 6 {
		t.Fatalf("body children = %d", len(body.Children))
	}
}

func TestParseImplicitClosers(t *testing.T) {
	p := Parse("x", `<body><p>one<p>two<ul><li>a<li>b</ul></body>`)
	body := p.Root.Children[0]
	var ps, lis int
	body.Walk(func(n *Node) bool {
		switch n.Tag {
		case "p":
			ps++
		case "li":
			lis++
		}
		return true
	})
	if ps != 2 {
		t.Errorf("paragraphs = %d, want 2 (implicit close)", ps)
	}
	if lis != 2 {
		t.Errorf("list items = %d, want 2 (implicit close)", lis)
	}
}

func TestParseStrayEndTags(t *testing.T) {
	p := Parse("x", `<body></b><p>ok</p></body></html></div>`)
	text := p.Root.DeepText()
	if text != "ok" {
		t.Errorf("DeepText = %q", text)
	}
}

func TestDeepTextNormalizesWhitespace(t *testing.T) {
	p := Parse("x", "<body><p>  several \n\t words  </p></body>")
	if got := p.Root.DeepText(); got != "several words" {
		t.Errorf("DeepText = %q", got)
	}
}

func TestByID(t *testing.T) {
	p := guideline(t)
	n, ok := p.ByID("dosing-para")
	if !ok || n.Tag != "p" {
		t.Fatalf("ByID(dosing-para) = %v, %v", n, ok)
	}
	// <a name="..."> anchors work too.
	if _, ok := p.ByID("dosing"); !ok {
		t.Fatal("ByID via a-name failed")
	}
	if _, ok := p.ByID("absent"); ok {
		t.Fatal("ByID(absent) found")
	}
}

func TestFind(t *testing.T) {
	p := guideline(t)
	lis := p.Find(func(n *Node) bool { return n.Tag == "li" })
	if len(lis) != 2 {
		t.Fatalf("Find(li) = %d", len(lis))
	}
}

func TestPathToResolveRoundTrip(t *testing.T) {
	p := guideline(t)
	var nodes []*Node
	p.Root.Walk(func(n *Node) bool {
		nodes = append(nodes, n)
		return true
	})
	for _, n := range nodes {
		path, err := p.PathTo(n)
		if err != nil {
			t.Fatalf("PathTo(%s): %v", n.Tag, err)
		}
		back, err := p.ResolvePath(path)
		if err != nil {
			t.Fatalf("ResolvePath(%q): %v", path, err)
		}
		if back != n {
			t.Fatalf("round trip of %q landed elsewhere", path)
		}
	}
}

func TestResolvePathAnchors(t *testing.T) {
	p := guideline(t)
	n, err := p.ResolvePath("#dosing-para")
	if err != nil {
		t.Fatal(err)
	}
	if n.DeepText() != "Furosemide 40mg IV is a typical starting dose." {
		t.Errorf("anchor text = %q", n.DeepText())
	}
	if _, err := p.ResolvePath("#absent"); err == nil {
		t.Error("absent anchor resolved")
	}
}

func TestResolvePathErrors(t *testing.T) {
	p := guideline(t)
	bad := []string{
		"", "relative", "/div[1]", "/html[2]", "/html[1]/nav[1]",
		"/html[1]/body[1]/p[9]", "/html[1]/body[1]/p[0]", "/html[1]/body[1]/p[x]",
		"/html[1]/body[1]/p[1", "/html[1]//p[1]",
	}
	for _, path := range bad {
		if _, err := p.ResolvePath(path); err == nil {
			t.Errorf("ResolvePath(%q) succeeded", path)
		}
	}
}

func TestPathToForeignNode(t *testing.T) {
	p := guideline(t)
	other := Parse("other", "<body><p>x</p></body>")
	foreign := other.Root.Children[0].Children[0]
	if _, err := p.PathTo(foreign); err == nil {
		t.Fatal("PathTo accepted foreign node")
	}
}
