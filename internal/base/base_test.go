package base

import (
	"fmt"
	"sync"
	"testing"
)

// fakeApp is a trivial Application for registry tests.
type fakeApp struct {
	scheme string
}

func (f *fakeApp) Scheme() string { return f.scheme }
func (f *fakeApp) Name() string   { return "fake-" + f.scheme }
func (f *fakeApp) CurrentSelection() (Address, error) {
	return Address{}, ErrNoSelection
}
func (f *fakeApp) GoTo(a Address) (Element, error) {
	return Element{Address: a}, nil
}

func TestAddressString(t *testing.T) {
	a := Address{Scheme: "xml", File: "lab.xml", Path: "/report[1]/k[1]"}
	if got := a.String(); got != "xml://lab.xml#/report[1]/k[1]" {
		t.Errorf("String() = %q", got)
	}
}

func TestAddressIsZero(t *testing.T) {
	if !(Address{}).IsZero() {
		t.Error("zero address not IsZero")
	}
	if (Address{Scheme: "x"}).IsZero() {
		t.Error("non-zero address IsZero")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	app := &fakeApp{scheme: "xml"}
	if err := r.Register(app); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("xml")
	if !ok || got != Application(app) {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := r.Lookup("absent"); ok {
		t.Error("Lookup of absent scheme succeeded")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&fakeApp{scheme: "xml"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeApp{scheme: "xml"}); err == nil {
		t.Fatal("duplicate scheme accepted")
	}
}

func TestRegistryEmptyScheme(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&fakeApp{scheme: ""}); err == nil {
		t.Fatal("empty scheme accepted")
	}
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	r.Register(&fakeApp{scheme: "xml"})
	r.Unregister("xml")
	if _, ok := r.Lookup("xml"); ok {
		t.Fatal("scheme still present after Unregister")
	}
	// Unregistering an absent scheme is a no-op.
	r.Unregister("absent")
}

func TestRegistrySchemesSorted(t *testing.T) {
	r := NewRegistry()
	for _, s := range []string{"pdf", "html", "xml", "spreadsheet"} {
		if err := r.Register(&fakeApp{scheme: s}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Schemes()
	want := []string{"html", "pdf", "spreadsheet", "xml"}
	if len(got) != len(want) {
		t.Fatalf("Schemes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Schemes = %v, want %v", got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scheme := fmt.Sprintf("s%d", i)
			r.Register(&fakeApp{scheme: scheme})
			r.Lookup(scheme)
			r.Schemes()
		}(i)
	}
	wg.Wait()
	if len(r.Schemes()) != 16 {
		t.Fatalf("Schemes = %d, want 16", len(r.Schemes()))
	}
}
