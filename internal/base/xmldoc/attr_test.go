package xmldoc

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func TestParsePathAttribute(t *testing.T) {
	p, err := ParsePath("/report/panel[2]/result/@code")
	if err != nil {
		t.Fatal(err)
	}
	if p.Attr != "code" || len(p.Steps) != 3 {
		t.Fatalf("path = %+v", p)
	}
	if p.String() != "/report[1]/panel[2]/result[1]/@code" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParsePathAttributeErrors(t *testing.T) {
	bad := []string{
		"/@code",            // attribute without element
		"/report/@a/@b",     // two attribute steps
		"/report/@a/panel",  // attribute not last
		"/report/@",         // empty attribute name
		"/report/@bad name", // invalid attribute name
		"/report/@x[1]",     // predicate on attribute
	}
	for _, expr := range bad {
		if _, err := ParsePath(expr); err == nil {
			t.Errorf("ParsePath(%q) succeeded", expr)
		}
	}
}

func TestResolveAttribute(t *testing.T) {
	d := labDoc(t)
	p, err := ParsePath("/report/panel[1]/result[2]/@code")
	if err != nil {
		t.Fatal(err)
	}
	n, content, err := d.ResolveContent(p)
	if err != nil {
		t.Fatal(err)
	}
	if content != "K" {
		t.Fatalf("attribute value = %q", content)
	}
	if n.Text != "4.1" {
		t.Fatalf("owning element = %v", n)
	}
	// Absent attribute.
	p2, _ := ParsePath("/report/panel[1]/result[2]/@absent")
	if _, err := d.Resolve(p2); err == nil {
		t.Fatal("absent attribute resolved")
	}
}

func TestAppAttributeMarks(t *testing.T) {
	a := appWithLab(t)
	addr := base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/panel[1]/result[2]/@code"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "K" {
		t.Fatalf("Content = %q", el.Content)
	}
	// Context is the owning element's text.
	if el.Context != "4.1" {
		t.Fatalf("Context = %q", el.Context)
	}
	// Canonical address keeps the attribute.
	if el.Address.Path != "/report[1]/panel[1]/result[2]/@code" {
		t.Fatalf("canonical = %q", el.Address.Path)
	}
	content, err := a.ExtractContent(addr)
	if err != nil || content != "K" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	ctx, err := a.ExtractContext(addr)
	if err != nil || ctx != "4.1" {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
	if _, err := a.GoTo(base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/@absent"}); !errors.Is(err, base.ErrBadAddress) {
		t.Fatalf("absent attr GoTo = %v", err)
	}
}

func TestAppAttributeSelection(t *testing.T) {
	// The create-from-selection path preserves the attribute, and mark
	// resolution returns to it.
	a := appWithLab(t)
	a.Open("lab.xml")
	if err := a.SelectExpr("/report/panel[1]/result[2]/@code"); err != nil {
		t.Fatal(err)
	}
	sel, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Path != "/report[1]/panel[1]/result[2]/@code" {
		t.Fatalf("selection = %q", sel.Path)
	}
	el, err := a.GoTo(sel)
	if err != nil || el.Content != "K" {
		t.Fatalf("GoTo selection = %q, %v", el.Content, err)
	}
	// GoTo to an attribute keeps it in the subsequent selection.
	sel2, err := a.CurrentSelection()
	if err != nil || sel2 != sel {
		t.Fatalf("selection after GoTo = %v, %v", sel2, err)
	}
	// SelectNode clears a stale attribute selection.
	d, _ := a.Document("lab.xml")
	k := d.Find(func(n *Node) bool { return n.Attrs["code"] == "K" })[0]
	if err := a.SelectNode(k); err != nil {
		t.Fatal(err)
	}
	sel3, _ := a.CurrentSelection()
	if sel3.Path != "/report[1]/panel[1]/result[2]" {
		t.Fatalf("stale attr kept: %q", sel3.Path)
	}
}

func FuzzParsePathXML(f *testing.F) {
	for _, s := range []string{"/a", "/a/b[2]/c", "/a/b/@attr", "relative", "//x", "/a[0]"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := ParsePath(expr)
		if err != nil {
			return
		}
		// Canonical form must re-parse to an identical path.
		back, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("canonical %q does not parse: %v", p.String(), err)
		}
		if back.String() != p.String() {
			t.Fatalf("canonicalization unstable: %q -> %q", p.String(), back.String())
		}
	})
}
