package xmldoc

import (
	"strings"
	"testing"
)

const labXML = `<?xml version="1.0"?>
<report date="2001-03-14">
  <patient>John Smith</patient>
  <panel name="electrolytes">
    <result code="Na">140</result>
    <result code="K">4.1</result>
    <result code="Cl">103</result>
  </panel>
  <panel name="cbc">
    <result code="WBC">11.2</result>
    <result code="Hgb">13.5</result>
  </panel>
</report>`

func labDoc(t *testing.T) *Document {
	t.Helper()
	d, err := Parse("lab.xml", labXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseStructure(t *testing.T) {
	d := labDoc(t)
	if d.Root.Name != "report" {
		t.Fatalf("root = %q", d.Root.Name)
	}
	if d.Root.Attrs["date"] != "2001-03-14" {
		t.Errorf("root attr = %q", d.Root.Attrs["date"])
	}
	if len(d.Root.Children) != 3 {
		t.Fatalf("root children = %d", len(d.Root.Children))
	}
	patient := d.Root.Children[0]
	if patient.Name != "patient" || patient.Text != "John Smith" {
		t.Errorf("patient = %q %q", patient.Name, patient.Text)
	}
	if patient.Parent != d.Root {
		t.Error("parent link broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"just text",
		"<a><b></a></b>",
		"<a></a><b></b>", // multiple roots
		"<a>",            // encoding/xml rejects unclosed at EOF? (it returns unexpected EOF)
	}
	for _, src := range bad {
		if _, err := Parse("bad.xml", src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestDeepText(t *testing.T) {
	d := labDoc(t)
	panel, ok := d.Root.Child("panel", 1)
	if !ok {
		t.Fatal("panel not found")
	}
	got := panel.DeepText()
	if got != "140 4.1 103" {
		t.Errorf("DeepText = %q", got)
	}
}

func TestChildAndPosition(t *testing.T) {
	d := labDoc(t)
	p2, ok := d.Root.Child("panel", 2)
	if !ok || p2.Attrs["name"] != "cbc" {
		t.Fatalf("Child(panel,2) = %v, %v", p2, ok)
	}
	if _, ok := d.Root.Child("panel", 3); ok {
		t.Error("Child(panel,3) found")
	}
	if _, ok := d.Root.Child("absent", 1); ok {
		t.Error("Child(absent) found")
	}
	if p2.Position() != 2 {
		t.Errorf("Position = %d", p2.Position())
	}
	if d.Root.Position() != 1 {
		t.Errorf("root Position = %d", d.Root.Position())
	}
}

func TestAttrNamesSorted(t *testing.T) {
	d, err := Parse("x", `<a c="3" b="2" a="1"/>`)
	if err != nil {
		t.Fatal(err)
	}
	names := d.Root.AttrNames()
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("AttrNames = %v", names)
	}
}

func TestWalkPrune(t *testing.T) {
	d := labDoc(t)
	count := 0
	d.Root.Walk(func(n *Node) bool {
		count++
		return n.Name != "panel" // prune inside panels
	})
	// report + patient + 2 panels = 4
	if count != 4 {
		t.Errorf("pruned walk visited %d nodes", count)
	}
}

func TestFind(t *testing.T) {
	d := labDoc(t)
	results := d.Find(func(n *Node) bool { return n.Name == "result" })
	if len(results) != 5 {
		t.Fatalf("Find(result) = %d", len(results))
	}
	k := d.Find(func(n *Node) bool { return n.Attrs["code"] == "K" })
	if len(k) != 1 || k[0].Text != "4.1" {
		t.Fatalf("Find(K) = %v", k)
	}
}
