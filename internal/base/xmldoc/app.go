package xmldoc

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "xml"

// App is the XML base application: a library of parsed documents plus the
// viewer state (open document, selected element). The paper's SLIMPad
// resolves XML marks by opening the lab report "and highlight[ing] the
// appropriate section of the XML document" (§3); GoTo reproduces that.
type App struct {
	mu   sync.Mutex
	docs map[string]*Document

	openDoc  *Document
	selected *Node
	// selAttr carries an attribute selection within the selected element
	// (attribute marks), or "".
	selAttr string
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{docs: make(map[string]*Document)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-xmlview" }

// AddDocument registers a parsed document in the library.
func (a *App) AddDocument(d *Document) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Name == "" {
		return fmt.Errorf("xmldoc: document needs a name")
	}
	if _, ok := a.docs[d.Name]; ok {
		return fmt.Errorf("xmldoc: document %q already in library", d.Name)
	}
	a.docs[d.Name] = d
	return nil
}

// LoadString parses XML text and registers it under the given name.
func (a *App) LoadString(name, text string) (*Document, error) {
	d, err := Parse(name, text)
	if err != nil {
		return nil, err
	}
	if err := a.AddDocument(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Document looks up a document by name.
func (a *App) Document(name string) (*Document, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	return d, ok
}

// Open makes a document current without selecting an element.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.docs[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openDoc, a.selected = d, nil
	return nil
}

// SelectExpr simulates the user selecting the element at the path in the
// open document.
func (a *App) SelectExpr(expr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil {
		return fmt.Errorf("xmldoc: no open document")
	}
	p, err := ParsePath(expr)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	n, err := a.openDoc.Resolve(p)
	if err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected, a.selAttr = n, p.Attr
	return nil
}

// SelectNode selects a node object of the open document directly (used by
// search-driven flows that find nodes with Document.Find).
func (a *App) SelectNode(n *Node) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil {
		return fmt.Errorf("xmldoc: no open document")
	}
	if _, err := a.openDoc.PathTo(n); err != nil {
		return fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	a.selected, a.selAttr = n, ""
	return nil
}

// CurrentSelection implements base.Application.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openDoc == nil || a.selected == nil {
		return base.Address{}, base.ErrNoSelection
	}
	p, err := a.openDoc.PathTo(a.selected)
	if err != nil {
		return base.Address{}, err
	}
	p.Attr = a.selAttr
	return base.Address{Scheme: Scheme, File: a.openDoc.Name, Path: p.String()}, nil
}

func (a *App) locate(addr base.Address) (*Document, *Node, Path, string, error) {
	if addr.Scheme != Scheme {
		return nil, nil, Path{}, "", fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	d, ok := a.docs[addr.File]
	if !ok {
		return nil, nil, Path{}, "", fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	p, err := ParsePath(addr.Path)
	if err != nil {
		return nil, nil, Path{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	n, content, err := d.ResolveContent(p)
	if err != nil {
		return nil, nil, Path{}, "", fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	return d, n, p, content, nil
}

// GoTo implements base.Application: open the document, highlight the
// element (or attribute), and return it.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, n, p, content, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openDoc, a.selected, a.selAttr = d, n, p.Attr
	canonical, err := d.PathTo(n)
	if err != nil {
		return base.Element{}, err
	}
	canonical.Attr = p.Attr
	context := contextOf(n)
	if p.Attr != "" {
		// For attribute marks the owning element is the natural context.
		context = n.DeepText()
	}
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: d.Name, Path: canonical.String()},
		Content: content,
		Context: context,
	}, nil
}

// ExtractContent implements base.ContentExtractor.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, _, content, err := a.locate(addr)
	return content, err
}

// ExtractContext implements base.ContextProvider: the parent element's deep
// text, so a scrap can show the enclosing section (the owning element's
// text for attribute addresses).
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, n, p, _, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	if p.Attr != "" {
		return n.DeepText(), nil
	}
	return contextOf(n), nil
}

func contextOf(n *Node) string {
	if n.Parent == nil {
		return n.DeepText()
	}
	var parts []string
	for _, sib := range n.Parent.Children {
		if t := sib.DeepText(); t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " | ")
}
