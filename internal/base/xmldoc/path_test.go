package xmldoc

import (
	"testing"
)

func TestParsePathOK(t *testing.T) {
	p, err := ParsePath("/report/panel[2]/result")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0] != (Step{"report", 1}) || p.Steps[1] != (Step{"panel", 2}) || p.Steps[2] != (Step{"result", 1}) {
		t.Fatalf("path = %v", p)
	}
	if p.String() != "/report[1]/panel[2]/result[1]" {
		t.Errorf("String = %q", p.String())
	}
}

func TestParsePathErrors(t *testing.T) {
	bad := []string{
		"", "relative/path", "/", "//x", "/a[b]", "/a[0]", "/a[-1]",
		"/a[1", "/a]1[", "/a b", "/[1]", "/a[1]/",
	}
	for _, expr := range bad {
		if _, err := ParsePath(expr); err == nil {
			t.Errorf("ParsePath(%q) succeeded", expr)
		}
	}
}

func TestResolve(t *testing.T) {
	d := labDoc(t)
	n, err := d.ResolveExpr("/report/panel[1]/result[2]")
	if err != nil {
		t.Fatal(err)
	}
	if n.Attrs["code"] != "K" || n.Text != "4.1" {
		t.Fatalf("resolved %v", n)
	}
	// Implicit [1] predicates.
	n2, err := d.ResolveExpr("/report/patient")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Text != "John Smith" {
		t.Fatalf("resolved %v", n2)
	}
}

func TestResolveErrors(t *testing.T) {
	d := labDoc(t)
	bad := []string{
		"/wrongroot/panel[1]",
		"/report[2]",
		"/report/panel[3]",
		"/report/absent",
		"/report/panel[1]/result[9]",
	}
	for _, expr := range bad {
		if _, err := d.ResolveExpr(expr); err == nil {
			t.Errorf("ResolveExpr(%q) succeeded", expr)
		}
	}
	if _, err := d.Resolve(Path{}); err == nil {
		t.Error("Resolve(empty path) succeeded")
	}
}

func TestPathToRoundTrip(t *testing.T) {
	d := labDoc(t)
	// For every element in the document, PathTo then Resolve returns the
	// same node — the XML-mark invariant.
	var nodes []*Node
	d.Root.Walk(func(n *Node) bool {
		nodes = append(nodes, n)
		return true
	})
	if len(nodes) != 9 { // report, patient, 2 panels, 5 results
		t.Fatalf("document has %d nodes", len(nodes))
	}
	for _, n := range nodes {
		p, err := d.PathTo(n)
		if err != nil {
			t.Fatalf("PathTo: %v", err)
		}
		back, err := d.Resolve(p)
		if err != nil {
			t.Fatalf("Resolve(%v): %v", p, err)
		}
		if back != n {
			t.Fatalf("round trip landed on a different node for %v", p)
		}
	}
}

func TestPathToForeignNode(t *testing.T) {
	d := labDoc(t)
	other, err := Parse("other.xml", "<report><x/></report>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PathTo(other.Root.Children[0]); err == nil {
		t.Fatal("PathTo accepted a node from another document")
	}
}
