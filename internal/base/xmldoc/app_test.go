package xmldoc

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func appWithLab(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if _, err := a.LoadString("lab.xml", labXML); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppIdentity(t *testing.T) {
	a := NewApp()
	if a.Scheme() != Scheme || a.Name() == "" {
		t.Fatal("bad identity")
	}
}

func TestLoadStringValidation(t *testing.T) {
	a := NewApp()
	if _, err := a.LoadString("", "<a/>"); err == nil {
		t.Error("unnamed document accepted")
	}
	if _, err := a.LoadString("x", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadString("x", "<a/>"); err == nil {
		t.Error("duplicate document accepted")
	}
	if _, err := a.LoadString("y", "not xml"); err == nil {
		t.Error("bad xml accepted")
	}
	if _, ok := a.Document("x"); !ok {
		t.Error("document lookup failed")
	}
}

func TestSelectionFlow(t *testing.T) {
	a := appWithLab(t)
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatalf("initial selection = %v", err)
	}
	if err := a.SelectExpr("/report/panel[1]"); err == nil {
		t.Fatal("select with no open document succeeded")
	}
	if err := a.Open("lab.xml"); err != nil {
		t.Fatal(err)
	}
	if err := a.SelectExpr("/report/panel[1]/result[2]"); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report[1]/panel[1]/result[2]"}
	if addr != want {
		t.Fatalf("selection = %v, want %v", addr, want)
	}
}

func TestSelectNode(t *testing.T) {
	a := appWithLab(t)
	a.Open("lab.xml")
	d, _ := a.Document("lab.xml")
	k := d.Find(func(n *Node) bool { return n.Attrs["code"] == "K" })[0]
	if err := a.SelectNode(k); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if addr.Path != "/report[1]/panel[1]/result[2]" {
		t.Fatalf("path = %q", addr.Path)
	}
	// A node from another document is rejected.
	other, _ := Parse("o", "<report><z/></report>")
	if err := a.SelectNode(other.Root.Children[0]); err == nil {
		t.Fatal("foreign node accepted")
	}
}

func TestGoToHighlights(t *testing.T) {
	a := appWithLab(t)
	addr := base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/panel[1]/result[2]"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "4.1" {
		t.Errorf("Content = %q", el.Content)
	}
	// Canonical address comes back.
	if el.Address.Path != "/report[1]/panel[1]/result[2]" {
		t.Errorf("canonical path = %q", el.Address.Path)
	}
	// Context lists sibling results.
	if el.Context != "140 | 4.1 | 103" {
		t.Errorf("Context = %q", el.Context)
	}
	sel, err := a.CurrentSelection()
	if err != nil || sel.Path != el.Address.Path {
		t.Errorf("selection after GoTo = %v, %v", sel, err)
	}
}

func TestGoToErrors(t *testing.T) {
	a := appWithLab(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "pdf", File: "lab.xml", Path: "/report"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "/report"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "lab.xml", Path: "bad path"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/absent"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}

func TestExtractContentAndContext(t *testing.T) {
	a := appWithLab(t)
	addr := base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/patient"}
	content, err := a.ExtractContent(addr)
	if err != nil || content != "John Smith" {
		t.Fatalf("ExtractContent = %q, %v", content, err)
	}
	// Extraction must not move the viewer.
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatal("ExtractContent moved the viewer")
	}
	ctx, err := a.ExtractContext(base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report/panel[1]/result[1]"})
	if err != nil || ctx != "140 | 4.1 | 103" {
		t.Fatalf("ExtractContext = %q, %v", ctx, err)
	}
	// Root context falls back to the whole document text.
	rootCtx, err := a.ExtractContext(base.Address{Scheme: Scheme, File: "lab.xml", Path: "/report"})
	if err != nil || rootCtx == "" {
		t.Fatalf("root context = %q, %v", rootCtx, err)
	}
}
