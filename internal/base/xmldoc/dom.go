// Package xmldoc is the XML base substrate: parsed documents whose elements
// are addressed by a simple path language — the xmlPath of the paper's XML
// mark (Fig. 8: fileName, xmlPath).
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Node is one element of a parsed XML document.
type Node struct {
	// Name is the element's local name.
	Name string
	// Attrs holds the element's attributes.
	Attrs map[string]string
	// Text is the concatenated character data directly inside the element
	// (not including descendant text), whitespace-trimmed.
	Text string
	// Children are the child elements in document order.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node
}

// Document is a named, parsed XML document.
type Document struct {
	// Name is the document's identity in the application library.
	Name string
	// Root is the document element.
	Root *Node
}

// Parse builds a Document from XML text.
func Parse(name, text string) (*Document, error) {
	dec := xml.NewDecoder(strings.NewReader(text))
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			return nil, fmt.Errorf("xmldoc: parsing %q: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local, Attrs: make(map[string]string)}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmldoc: parsing %q: multiple root elements", name)
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: parsing %q: unbalanced end element", name)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				cur := stack[len(stack)-1]
				cur.Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldoc: parsing %q: no root element", name)
	}
	trimText(root)
	return &Document{Name: name, Root: root}, nil
}

func trimText(n *Node) {
	n.Text = strings.TrimSpace(n.Text)
	for _, c := range n.Children {
		trimText(c)
	}
}

// DeepText returns the element's own text plus all descendant text, joined
// with single spaces — the textual content of a marked XML element.
func (n *Node) DeepText() string {
	var parts []string
	var walk func(*Node)
	walk = func(x *Node) {
		if x.Text != "" {
			parts = append(parts, x.Text)
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.Join(parts, " ")
}

// Child returns the i-th (1-based) child element named name, matching the
// path language's positional predicate.
func (n *Node) Child(name string, i int) (*Node, bool) {
	seen := 0
	for _, c := range n.Children {
		if c.Name == name {
			seen++
			if seen == i {
				return c, true
			}
		}
	}
	return nil, false
}

// Position returns the node's 1-based position among same-named siblings.
func (n *Node) Position() int {
	if n.Parent == nil {
		return 1
	}
	pos := 0
	for _, sib := range n.Parent.Children {
		if sib.Name == n.Name {
			pos++
		}
		if sib == n {
			return pos
		}
	}
	return pos
}

// AttrNames returns the element's attribute names, sorted.
func (n *Node) AttrNames() []string {
	out := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Walk visits n and every descendant in document order; fn returning false
// prunes that subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns every element in the document for which pred is true, in
// document order.
func (d *Document) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	d.Root.Walk(func(n *Node) bool {
		if pred(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}
