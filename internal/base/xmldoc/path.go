package xmldoc

import (
	"fmt"
	"strconv"
	"strings"
)

// The xmlPath language: an absolute path of element steps, each optionally
// carrying a 1-based positional predicate, with an optional final attribute
// step:
//
//	/report/panel[2]/result[1]
//	/report/panel[2]/result[1]/@code
//
// Omitted predicates mean [1]. The language deliberately covers element
// navigation plus attribute access — the granularity the paper's XML mark
// needs — while remaining a strict subset of XPath so paths stay meaningful
// to XPath tooling.

// Step is one component of a path.
type Step struct {
	// Name is the element name to match.
	Name string
	// Index is the 1-based position among same-named siblings.
	Index int
}

// Path is a parsed xmlPath: element steps plus an optional final attribute
// name.
type Path struct {
	Steps []Step
	// Attr is the attribute selected by a final /@name step, or "".
	Attr string
}

// ParsePath parses an absolute path expression.
func ParsePath(expr string) (Path, error) {
	if !strings.HasPrefix(expr, "/") {
		return Path{}, fmt.Errorf("xmldoc: path %q must be absolute", expr)
	}
	raw := strings.Split(expr[1:], "/")
	if len(raw) == 1 && raw[0] == "" {
		return Path{}, fmt.Errorf("xmldoc: empty path %q", expr)
	}
	var path Path
	for pi, part := range raw {
		if part == "" {
			return Path{}, fmt.Errorf("xmldoc: path %q has an empty step", expr)
		}
		if strings.HasPrefix(part, "@") {
			if pi != len(raw)-1 {
				return Path{}, fmt.Errorf("xmldoc: path %q: attribute step must be last", expr)
			}
			attr := part[1:]
			if attr == "" || strings.ContainsAny(attr, "[]/@ \t") {
				return Path{}, fmt.Errorf("xmldoc: path %q: invalid attribute name %q", expr, attr)
			}
			if len(path.Steps) == 0 {
				return Path{}, fmt.Errorf("xmldoc: path %q: attribute step needs an element", expr)
			}
			path.Attr = attr
			continue
		}
		step := Step{Index: 1}
		name := part
		if i := strings.IndexByte(part, '['); i >= 0 {
			if !strings.HasSuffix(part, "]") {
				return Path{}, fmt.Errorf("xmldoc: step %q: unterminated predicate", part)
			}
			name = part[:i]
			idxText := part[i+1 : len(part)-1]
			idx, err := strconv.Atoi(idxText)
			if err != nil || idx < 1 {
				return Path{}, fmt.Errorf("xmldoc: step %q: predicate must be a positive integer", part)
			}
			step.Index = idx
		}
		if name == "" {
			return Path{}, fmt.Errorf("xmldoc: step %q: missing element name", part)
		}
		if strings.ContainsAny(name, "[]/@ \t") {
			return Path{}, fmt.Errorf("xmldoc: step %q: invalid element name", part)
		}
		step.Name = name
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

// String renders the path in canonical form. Predicates are always written,
// so equal paths render identically.
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "/%s[%d]", s.Name, s.Index)
	}
	if p.Attr != "" {
		b.WriteString("/@")
		b.WriteString(p.Attr)
	}
	return b.String()
}

// Resolve walks the path from the document root, returning the designated
// element. Attribute paths resolve to the owning element (use
// ResolveContent for the attribute's value).
func (d *Document) Resolve(p Path) (*Node, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("xmldoc: empty path")
	}
	if p.Steps[0].Name != d.Root.Name || p.Steps[0].Index != 1 {
		return nil, fmt.Errorf("xmldoc: path root /%s[%d] does not match document root <%s>", p.Steps[0].Name, p.Steps[0].Index, d.Root.Name)
	}
	cur := d.Root
	for _, step := range p.Steps[1:] {
		next, ok := cur.Child(step.Name, step.Index)
		if !ok {
			return nil, fmt.Errorf("xmldoc: no element %s[%d] under <%s>", step.Name, step.Index, cur.Name)
		}
		cur = next
	}
	if p.Attr != "" {
		if _, ok := cur.Attrs[p.Attr]; !ok {
			return nil, fmt.Errorf("xmldoc: element <%s> has no attribute %q", cur.Name, p.Attr)
		}
	}
	return cur, nil
}

// ResolveContent resolves a path to its content: an attribute's value for
// attribute paths, the element's deep text otherwise.
func (d *Document) ResolveContent(p Path) (*Node, string, error) {
	n, err := d.Resolve(p)
	if err != nil {
		return nil, "", err
	}
	if p.Attr != "" {
		return n, n.Attrs[p.Attr], nil
	}
	return n, n.DeepText(), nil
}

// ResolveExpr parses and resolves a path expression in one call.
func (d *Document) ResolveExpr(expr string) (*Node, error) {
	p, err := ParsePath(expr)
	if err != nil {
		return nil, err
	}
	return d.Resolve(p)
}

// PathTo computes the canonical path from the document root to the node.
// The node must belong to this document.
func (d *Document) PathTo(n *Node) (Path, error) {
	var rev []Step
	cur := n
	for cur != nil {
		rev = append(rev, Step{Name: cur.Name, Index: cur.Position()})
		cur = cur.Parent
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) == 0 || rev[0].Name != d.Root.Name {
		return Path{}, fmt.Errorf("xmldoc: node is not part of document %q", d.Name)
	}
	p := Path{Steps: rev}
	// Verify the path round-trips to the same node (detects nodes from
	// other documents with coincidentally matching roots).
	got, err := d.Resolve(p)
	if err != nil || got != n {
		return Path{}, fmt.Errorf("xmldoc: node is not part of document %q", d.Name)
	}
	return p, nil
}
