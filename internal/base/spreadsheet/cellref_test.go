package spreadsheet

import (
	"testing"
	"testing/quick"
)

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want CellRef
	}{
		{"A1", CellRef{0, 0}},
		{"B2", CellRef{1, 1}},
		{"Z1", CellRef{0, 25}},
		{"AA1", CellRef{0, 26}},
		{"AB12", CellRef{11, 27}},
		{"BA100", CellRef{99, 52}},
	}
	for _, c := range cases {
		got, err := ParseCell(c.in)
		if err != nil {
			t.Errorf("ParseCell(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCell(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseCellErrors(t *testing.T) {
	for _, in := range []string{"", "1", "A", "A0", "a1", "A1B", "A-1", "A99999999999", "AAAAAAAAAAAAAAA1"} {
		if _, err := ParseCell(in); err == nil {
			t.Errorf("ParseCell(%q) succeeded", in)
		}
	}
}

func TestFormatCellRoundTripProperty(t *testing.T) {
	f := func(row, col uint16) bool {
		c := CellRef{Row: int(row), Col: int(col)}
		back, err := ParseCell(FormatCell(c))
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRange(t *testing.T) {
	r, err := ParseRange("B2:C4")
	if err != nil {
		t.Fatal(err)
	}
	want := Range{Start: CellRef{1, 1}, End: CellRef{3, 2}}
	if r != want {
		t.Fatalf("ParseRange = %v, want %v", r, want)
	}
	single, err := ParseRange("D7")
	if err != nil {
		t.Fatal(err)
	}
	if !single.Single() || single.Start != (CellRef{6, 3}) {
		t.Fatalf("single-cell range = %v", single)
	}
}

func TestParseRangeNormalizes(t *testing.T) {
	r, err := ParseRange("C4:B2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != (CellRef{1, 1}) || r.End != (CellRef{3, 2}) {
		t.Fatalf("reversed range not normalized: %v", r)
	}
	if FormatRange(r) != "B2:C4" {
		t.Fatalf("FormatRange = %q", FormatRange(r))
	}
}

func TestParseRangeErrors(t *testing.T) {
	for _, in := range []string{"", ":", "B2:", ":C4", "B2:C4:D6"} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q) succeeded", in)
		}
	}
}

func TestRangeCellsAndContains(t *testing.T) {
	r := Range{Start: CellRef{1, 1}, End: CellRef{3, 2}}
	if r.Cells() != 6 {
		t.Errorf("Cells = %d, want 6", r.Cells())
	}
	if !r.Contains(CellRef{2, 2}) {
		t.Error("Contains(inside) = false")
	}
	if r.Contains(CellRef{0, 1}) || r.Contains(CellRef{1, 3}) {
		t.Error("Contains(outside) = true")
	}
}

func TestParsePath(t *testing.T) {
	sheet, r, err := ParsePath("Meds!B2:B4")
	if err != nil {
		t.Fatal(err)
	}
	if sheet != "Meds" {
		t.Errorf("sheet = %q", sheet)
	}
	if FormatRange(r) != "B2:B4" {
		t.Errorf("range = %q", FormatRange(r))
	}
	if got := FormatPath("Meds", r); got != "Meds!B2:B4" {
		t.Errorf("FormatPath = %q", got)
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, in := range []string{"", "NoBang", "!B2", "Sheet!", "Sheet!bad"} {
		if _, _, err := ParsePath(in); err == nil {
			t.Errorf("ParsePath(%q) succeeded", in)
		}
	}
}

func TestRangePathRoundTripProperty(t *testing.T) {
	f := func(r1, c1, r2, c2 uint8) bool {
		r := Range{Start: CellRef{int(r1), int(c1)}, End: CellRef{int(r2), int(c2)}}.normalize()
		sheet, back, err := ParsePath(FormatPath("S", r))
		return err == nil && sheet == "S" && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
