package spreadsheet

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Workbook is a named collection of sheets, the document unit of the
// spreadsheet substrate.
type Workbook struct {
	// Name is the workbook's identity in the application library (the
	// paper's fileName).
	Name   string
	sheets []*Sheet
	byName map[string]*Sheet
}

// Sheet is one worksheet: a sparse grid of string cells.
type Sheet struct {
	// Name is the sheet name (the paper's sheetName).
	Name  string
	cells map[CellRef]string
	// maxRow/maxCol track the used extent, -1 when empty.
	maxRow, maxCol int
}

// NewWorkbook returns an empty workbook.
func NewWorkbook(name string) *Workbook {
	return &Workbook{Name: name, byName: make(map[string]*Sheet)}
}

// AddSheet appends a new empty sheet. Sheet names must be unique and must
// not contain '!' (reserved by the address syntax).
func (w *Workbook) AddSheet(name string) (*Sheet, error) {
	if name == "" || strings.Contains(name, "!") {
		return nil, fmt.Errorf("spreadsheet: invalid sheet name %q", name)
	}
	if _, ok := w.byName[name]; ok {
		return nil, fmt.Errorf("spreadsheet: duplicate sheet %q", name)
	}
	s := &Sheet{Name: name, cells: make(map[CellRef]string), maxRow: -1, maxCol: -1}
	w.sheets = append(w.sheets, s)
	w.byName[name] = s
	return s, nil
}

// Sheet looks up a sheet by name.
func (w *Workbook) Sheet(name string) (*Sheet, bool) {
	s, ok := w.byName[name]
	return s, ok
}

// Sheets returns the sheets in insertion order.
func (w *Workbook) Sheets() []*Sheet {
	return append([]*Sheet(nil), w.sheets...)
}

// Set writes a cell value. Empty strings clear the cell.
func (s *Sheet) Set(c CellRef, value string) {
	if c.Row < 0 || c.Col < 0 {
		return
	}
	if value == "" {
		delete(s.cells, c)
		return
	}
	s.cells[c] = value
	if c.Row > s.maxRow {
		s.maxRow = c.Row
	}
	if c.Col > s.maxCol {
		s.maxCol = c.Col
	}
}

// Get reads a cell value; absent cells read as "".
func (s *Sheet) Get(c CellRef) string { return s.cells[c] }

// UsedRange returns the smallest range covering all non-empty cells and
// whether the sheet has any content.
func (s *Sheet) UsedRange() (Range, bool) {
	if len(s.cells) == 0 {
		return Range{}, false
	}
	minR, minC := s.maxRow, s.maxCol
	for c := range s.cells {
		if c.Row < minR {
			minR = c.Row
		}
		if c.Col < minC {
			minC = c.Col
		}
	}
	return Range{Start: CellRef{minR, minC}, End: CellRef{s.maxRow, s.maxCol}}, true
}

// Values returns the range's contents row by row, tab-separating cells and
// newline-separating rows — the textual content of a range element.
func (s *Sheet) Values(r Range) string {
	r = r.normalize()
	var b strings.Builder
	for row := r.Start.Row; row <= r.End.Row; row++ {
		if row > r.Start.Row {
			b.WriteByte('\n')
		}
		for col := r.Start.Col; col <= r.End.Col; col++ {
			if col > r.Start.Col {
				b.WriteByte('\t')
			}
			b.WriteString(s.Get(CellRef{row, col}))
		}
	}
	return b.String()
}

// Row returns the full used row containing the cell, as context text.
func (s *Sheet) Row(row int) string {
	if row < 0 || s.maxCol < 0 {
		return ""
	}
	return s.Values(Range{Start: CellRef{row, 0}, End: CellRef{row, s.maxCol}})
}

// FindText returns the references of all cells whose value contains the
// (case-sensitive) needle, in row-major order.
func (s *Sheet) FindText(needle string) []CellRef {
	var out []CellRef
	if s.maxRow < 0 {
		return out
	}
	for row := 0; row <= s.maxRow; row++ {
		for col := 0; col <= s.maxCol; col++ {
			ref := CellRef{row, col}
			if v, ok := s.cells[ref]; ok && strings.Contains(v, needle) {
				out = append(out, ref)
			}
		}
	}
	return out
}

// LoadCSV fills a new sheet from CSV text, starting at A1.
func (w *Workbook) LoadCSV(sheetName, csvText string) (*Sheet, error) {
	s, err := w.AddSheet(sheetName)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(strings.NewReader(csvText))
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("spreadsheet: loading CSV into %q: %w", sheetName, err)
	}
	for rowIdx, rec := range records {
		for colIdx, v := range rec {
			s.Set(CellRef{rowIdx, colIdx}, v)
		}
	}
	return s, nil
}
