package spreadsheet

import (
	"fmt"
	"sync"

	"repro/internal/base"
)

// Scheme is the address scheme served by this application.
const Scheme = "spreadsheet"

// App is the spreadsheet base application: a library of workbooks plus the
// viewer state (open workbook, active sheet, selected range) that the
// paper's Excel automation drives: "tell Microsoft Excel to open the file,
// activate the worksheet, and select the appropriate range" (§4.2).
type App struct {
	mu    sync.Mutex
	books map[string]*Workbook

	// viewer state
	openBook  *Workbook
	openSheet *Sheet
	selection Range
	selected  bool
}

var _ base.Application = (*App)(nil)
var _ base.ContentExtractor = (*App)(nil)
var _ base.ContextProvider = (*App)(nil)

// NewApp returns an application with an empty library.
func NewApp() *App {
	return &App{books: make(map[string]*Workbook)}
}

// Scheme implements base.Application.
func (a *App) Scheme() string { return Scheme }

// Name implements base.Application.
func (a *App) Name() string { return "go-sheets" }

// AddWorkbook registers a workbook in the library.
func (a *App) AddWorkbook(w *Workbook) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.Name == "" {
		return fmt.Errorf("spreadsheet: workbook needs a name")
	}
	if _, ok := a.books[w.Name]; ok {
		return fmt.Errorf("spreadsheet: workbook %q already in library", w.Name)
	}
	a.books[w.Name] = w
	return nil
}

// Workbook looks up a workbook by name.
func (a *App) Workbook(name string) (*Workbook, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w, ok := a.books[name]
	return w, ok
}

// Open makes the workbook current without selecting anything, like a user
// opening a file.
func (a *App) Open(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	w, ok := a.books[name]
	if !ok {
		return fmt.Errorf("%w: %q", base.ErrUnknownDocument, name)
	}
	a.openBook, a.openSheet, a.selected = w, nil, false
	return nil
}

// SelectRange simulates the user selecting a range in a sheet of the open
// workbook. It is the action that precedes mark creation.
func (a *App) SelectRange(sheetName string, r Range) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.openBook == nil {
		return fmt.Errorf("spreadsheet: no open workbook")
	}
	sheet, ok := a.openBook.Sheet(sheetName)
	if !ok {
		return fmt.Errorf("%w: no sheet %q in %q", base.ErrBadAddress, sheetName, a.openBook.Name)
	}
	a.openSheet = sheet
	a.selection = r.normalize()
	a.selected = true
	return nil
}

// CurrentSelection implements base.Application: the address of the selected
// range.
func (a *App) CurrentSelection() (base.Address, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.selected || a.openBook == nil || a.openSheet == nil {
		return base.Address{}, base.ErrNoSelection
	}
	return base.Address{
		Scheme: Scheme,
		File:   a.openBook.Name,
		Path:   FormatPath(a.openSheet.Name, a.selection),
	}, nil
}

// locate validates an address against the library without touching viewer
// state.
func (a *App) locate(addr base.Address) (*Workbook, *Sheet, Range, error) {
	if addr.Scheme != Scheme {
		return nil, nil, Range{}, fmt.Errorf("%w: %q", base.ErrWrongScheme, addr.Scheme)
	}
	w, ok := a.books[addr.File]
	if !ok {
		return nil, nil, Range{}, fmt.Errorf("%w: %q", base.ErrUnknownDocument, addr.File)
	}
	sheetName, rng, err := ParsePath(addr.Path)
	if err != nil {
		return nil, nil, Range{}, fmt.Errorf("%w: %w", base.ErrBadAddress, err)
	}
	sheet, ok := w.Sheet(sheetName)
	if !ok {
		return nil, nil, Range{}, fmt.Errorf("%w: no sheet %q in %q", base.ErrBadAddress, sheetName, addr.File)
	}
	return w, sheet, rng, nil
}

// GoTo implements base.Application: open the workbook, activate the sheet,
// select the range, and return the element.
func (a *App) GoTo(addr base.Address) (base.Element, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w, sheet, rng, err := a.locate(addr)
	if err != nil {
		return base.Element{}, err
	}
	a.openBook, a.openSheet, a.selection, a.selected = w, sheet, rng, true
	return base.Element{
		Address: base.Address{Scheme: Scheme, File: w.Name, Path: FormatPath(sheet.Name, rng)},
		Content: sheet.Values(rng),
		Context: sheet.Row(rng.Start.Row),
	}, nil
}

// ExtractContent implements base.ContentExtractor without changing viewer
// state.
func (a *App) ExtractContent(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, sheet, rng, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	return sheet.Values(rng), nil
}

// ExtractContext implements base.ContextProvider: the used rows spanned by
// the range, so a scrap can show its row neighborhood in place.
func (a *App) ExtractContext(addr base.Address) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, sheet, rng, err := a.locate(addr)
	if err != nil {
		return "", err
	}
	out := ""
	for row := rng.Start.Row; row <= rng.End.Row; row++ {
		if row > rng.Start.Row {
			out += "\n"
		}
		out += sheet.Row(row)
	}
	return out, nil
}
