package spreadsheet

import (
	"testing"
)

func medsWorkbook(t *testing.T) *Workbook {
	t.Helper()
	w := NewWorkbook("meds.xls")
	if _, err := w.LoadCSV("Meds", "Drug,Dose,Route\nFurosemide,40mg,IV\nInsulin,5u,SC\nCeftriaxone,1g,IV\n"); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAddSheetValidation(t *testing.T) {
	w := NewWorkbook("b")
	if _, err := w.AddSheet(""); err == nil {
		t.Error("empty sheet name accepted")
	}
	if _, err := w.AddSheet("bad!name"); err == nil {
		t.Error("sheet name with '!' accepted")
	}
	if _, err := w.AddSheet("S1"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddSheet("S1"); err == nil {
		t.Error("duplicate sheet accepted")
	}
}

func TestSheetLookup(t *testing.T) {
	w := medsWorkbook(t)
	if _, ok := w.Sheet("Meds"); !ok {
		t.Fatal("sheet not found")
	}
	if _, ok := w.Sheet("Absent"); ok {
		t.Fatal("absent sheet found")
	}
	if len(w.Sheets()) != 1 {
		t.Fatalf("Sheets = %d", len(w.Sheets()))
	}
}

func TestSetGetClear(t *testing.T) {
	w := NewWorkbook("b")
	s, _ := w.AddSheet("S")
	c := CellRef{2, 3}
	s.Set(c, "hello")
	if s.Get(c) != "hello" {
		t.Fatal("Get after Set failed")
	}
	s.Set(c, "")
	if s.Get(c) != "" {
		t.Fatal("empty Set did not clear")
	}
	// Negative coordinates are ignored.
	s.Set(CellRef{-1, 0}, "x")
	if s.Get(CellRef{-1, 0}) != "" {
		t.Fatal("negative cell stored")
	}
}

func TestUsedRange(t *testing.T) {
	w := NewWorkbook("b")
	s, _ := w.AddSheet("S")
	if _, ok := s.UsedRange(); ok {
		t.Fatal("empty sheet has a used range")
	}
	s.Set(CellRef{1, 1}, "a")
	s.Set(CellRef{3, 4}, "b")
	r, ok := s.UsedRange()
	if !ok || r.Start != (CellRef{1, 1}) || r.End != (CellRef{3, 4}) {
		t.Fatalf("UsedRange = %v, %v", r, ok)
	}
}

func TestValuesAndRow(t *testing.T) {
	w := medsWorkbook(t)
	s, _ := w.Sheet("Meds")
	r, _ := ParseRange("A2:C2")
	if got := s.Values(r); got != "Furosemide\t40mg\tIV" {
		t.Errorf("Values = %q", got)
	}
	if got := s.Row(2); got != "Insulin\t5u\tSC" {
		t.Errorf("Row = %q", got)
	}
	multi, _ := ParseRange("A1:A2")
	if got := s.Values(multi); got != "Drug\nFurosemide" {
		t.Errorf("multi-row Values = %q", got)
	}
	if s.Row(-1) != "" {
		t.Error("negative Row nonempty")
	}
}

func TestFindText(t *testing.T) {
	w := medsWorkbook(t)
	s, _ := w.Sheet("Meds")
	hits := s.FindText("IV")
	if len(hits) != 2 {
		t.Fatalf("FindText(IV) = %v", hits)
	}
	if hits[0] != (CellRef{1, 2}) || hits[1] != (CellRef{3, 2}) {
		t.Fatalf("FindText order = %v", hits)
	}
	if len(s.FindText("absent")) != 0 {
		t.Fatal("FindText(absent) found something")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	w := NewWorkbook("b")
	if _, err := w.LoadCSV("S", "a,\"unterminated\n"); err == nil {
		t.Error("bad CSV accepted")
	}
	if _, err := w.LoadCSV("S!bad", "a"); err == nil {
		t.Error("bad sheet name accepted in LoadCSV")
	}
}

func TestLoadCSVRaggedRows(t *testing.T) {
	w := NewWorkbook("b")
	s, err := w.LoadCSV("S", "a,b,c\nd\ne,f\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(CellRef{1, 0}) != "d" || s.Get(CellRef{2, 1}) != "f" {
		t.Fatal("ragged CSV loaded wrong")
	}
	if s.Get(CellRef{1, 2}) != "" {
		t.Fatal("phantom cell")
	}
}
