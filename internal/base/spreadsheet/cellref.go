// Package spreadsheet is the Excel-like base substrate: workbooks of named
// sheets holding cell grids, addressed by sheet name plus A1-notation range
// exactly as the paper's Excel mark does (Fig. 8: fileName, sheetName,
// range).
package spreadsheet

import (
	"fmt"
	"strings"
)

// CellRef is a zero-based (row, column) cell coordinate.
type CellRef struct {
	Row, Col int
}

// Range is an inclusive rectangle of cells. A single cell is a Range whose
// Start equals its End.
type Range struct {
	Start, End CellRef
}

// Single reports whether the range is one cell.
func (r Range) Single() bool { return r.Start == r.End }

// Cells returns the number of cells in the range.
func (r Range) Cells() int {
	return (r.End.Row - r.Start.Row + 1) * (r.End.Col - r.Start.Col + 1)
}

// Contains reports whether the cell lies inside the range.
func (r Range) Contains(c CellRef) bool {
	return c.Row >= r.Start.Row && c.Row <= r.End.Row &&
		c.Col >= r.Start.Col && c.Col <= r.End.Col
}

// normalize orders the corners so Start is the top-left.
func (r Range) normalize() Range {
	if r.Start.Row > r.End.Row {
		r.Start.Row, r.End.Row = r.End.Row, r.Start.Row
	}
	if r.Start.Col > r.End.Col {
		r.Start.Col, r.End.Col = r.End.Col, r.Start.Col
	}
	return r
}

// FormatCell renders a cell in A1 notation ("A1", "AB12").
func FormatCell(c CellRef) string {
	return colName(c.Col) + fmt.Sprint(c.Row+1)
}

// FormatRange renders a range in A1 notation: "B2" or "B2:C4".
func FormatRange(r Range) string {
	r = r.normalize()
	if r.Single() {
		return FormatCell(r.Start)
	}
	return FormatCell(r.Start) + ":" + FormatCell(r.End)
}

func colName(col int) string {
	name := ""
	for col >= 0 {
		name = string(rune('A'+col%26)) + name
		col = col/26 - 1
	}
	return name
}

// ParseCell parses A1 notation into a CellRef.
func ParseCell(s string) (CellRef, error) {
	i := 0
	col := 0
	for i < len(s) && s[i] >= 'A' && s[i] <= 'Z' {
		col = col*26 + int(s[i]-'A') + 1
		if col > 1<<24 {
			return CellRef{}, fmt.Errorf("spreadsheet: %q: column out of range", s)
		}
		i++
	}
	if i == 0 {
		return CellRef{}, fmt.Errorf("spreadsheet: %q: missing column letters", s)
	}
	if i == len(s) {
		return CellRef{}, fmt.Errorf("spreadsheet: %q: missing row number", s)
	}
	row := 0
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return CellRef{}, fmt.Errorf("spreadsheet: %q: bad row digit %q", s, s[i])
		}
		row = row*10 + int(s[i]-'0')
		if row > 1<<24 {
			return CellRef{}, fmt.Errorf("spreadsheet: %q: row out of range", s)
		}
	}
	if row == 0 {
		return CellRef{}, fmt.Errorf("spreadsheet: %q: rows start at 1", s)
	}
	return CellRef{Row: row - 1, Col: col - 1}, nil
}

// ParseRange parses "B2" or "B2:C4" into a normalized Range.
func ParseRange(s string) (Range, error) {
	a, b, found := strings.Cut(s, ":")
	start, err := ParseCell(a)
	if err != nil {
		return Range{}, err
	}
	if !found {
		return Range{Start: start, End: start}, nil
	}
	end, err := ParseCell(b)
	if err != nil {
		return Range{}, err
	}
	return Range{Start: start, End: end}.normalize(), nil
}

// ParsePath splits an address path "Sheet!B2:C4" into sheet name and range.
// Sheet names containing '!' are not supported, matching A1-notation rules.
func ParsePath(path string) (sheet string, rng Range, err error) {
	name, ref, found := strings.Cut(path, "!")
	if !found || name == "" {
		return "", Range{}, fmt.Errorf("spreadsheet: path %q must be Sheet!Range", path)
	}
	rng, err = ParseRange(ref)
	if err != nil {
		return "", Range{}, err
	}
	return name, rng, nil
}

// FormatPath renders a sheet name and range as an address path.
func FormatPath(sheet string, rng Range) string {
	return sheet + "!" + FormatRange(rng)
}
