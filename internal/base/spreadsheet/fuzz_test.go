package spreadsheet

import (
	"testing"
)

// FuzzParseRange: any accepted range must format back to a string that
// parses to the same (normalized) range.
func FuzzParseRange(f *testing.F) {
	for _, s := range []string{"A1", "B2:C4", "ZZ99:A1", "AB12", "A1:A1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRange(s)
		if err != nil {
			return
		}
		back, err := ParseRange(FormatRange(r))
		if err != nil || back != r {
			t.Fatalf("round trip of %q (= %v) failed: %v", s, r, err)
		}
	})
}

// FuzzParsePath: accepted paths round trip through FormatPath.
func FuzzParsePath(f *testing.F) {
	f.Add("Meds!A2:C2")
	f.Add("Sheet 1!B3")
	f.Fuzz(func(t *testing.T, s string) {
		sheet, r, err := ParsePath(s)
		if err != nil {
			return
		}
		sheet2, r2, err := ParsePath(FormatPath(sheet, r))
		if err != nil || sheet2 != sheet || r2 != r {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
	})
}
