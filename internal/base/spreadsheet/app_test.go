package spreadsheet

import (
	"errors"
	"testing"

	"repro/internal/base"
)

func appWithMeds(t *testing.T) *App {
	t.Helper()
	a := NewApp()
	if err := a.AddWorkbook(medsWorkbook(t)); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAppIdentity(t *testing.T) {
	a := NewApp()
	if a.Scheme() != Scheme || a.Name() == "" {
		t.Fatalf("identity: %q %q", a.Scheme(), a.Name())
	}
}

func TestAddWorkbookValidation(t *testing.T) {
	a := NewApp()
	if err := a.AddWorkbook(NewWorkbook("")); err == nil {
		t.Error("unnamed workbook accepted")
	}
	w := NewWorkbook("x")
	if err := a.AddWorkbook(w); err != nil {
		t.Fatal(err)
	}
	if err := a.AddWorkbook(NewWorkbook("x")); err == nil {
		t.Error("duplicate workbook accepted")
	}
	if _, ok := a.Workbook("x"); !ok {
		t.Error("workbook lookup failed")
	}
}

func TestSelectionFlow(t *testing.T) {
	a := appWithMeds(t)
	// No selection before any interaction.
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatalf("CurrentSelection before open = %v", err)
	}
	if err := a.Open("meds.xls"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CurrentSelection(); !errors.Is(err, base.ErrNoSelection) {
		t.Fatalf("CurrentSelection before select = %v", err)
	}
	r, _ := ParseRange("A2:C2")
	if err := a.SelectRange("Meds", r); err != nil {
		t.Fatal(err)
	}
	addr, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Address{Scheme: Scheme, File: "meds.xls", Path: "Meds!A2:C2"}
	if addr != want {
		t.Fatalf("CurrentSelection = %v, want %v", addr, want)
	}
}

func TestSelectErrors(t *testing.T) {
	a := appWithMeds(t)
	r, _ := ParseRange("A1")
	if err := a.SelectRange("Meds", r); err == nil {
		t.Error("SelectRange without open workbook succeeded")
	}
	if err := a.Open("nope.xls"); !errors.Is(err, base.ErrUnknownDocument) {
		t.Errorf("Open missing = %v", err)
	}
	a.Open("meds.xls")
	if err := a.SelectRange("NoSheet", r); !errors.Is(err, base.ErrBadAddress) {
		t.Errorf("SelectRange bad sheet = %v", err)
	}
}

func TestGoToResolvesAndHighlights(t *testing.T) {
	a := appWithMeds(t)
	addr := base.Address{Scheme: Scheme, File: "meds.xls", Path: "Meds!A2"}
	el, err := a.GoTo(addr)
	if err != nil {
		t.Fatal(err)
	}
	if el.Content != "Furosemide" {
		t.Errorf("Content = %q", el.Content)
	}
	if el.Context != "Furosemide\t40mg\tIV" {
		t.Errorf("Context = %q", el.Context)
	}
	// GoTo drives the viewer: the selection afterwards is the address.
	sel, err := a.CurrentSelection()
	if err != nil {
		t.Fatal(err)
	}
	if sel != addr {
		t.Errorf("selection after GoTo = %v, want %v", sel, addr)
	}
}

func TestGoToErrors(t *testing.T) {
	a := appWithMeds(t)
	cases := []struct {
		addr base.Address
		want error
	}{
		{base.Address{Scheme: "xml", File: "meds.xls", Path: "Meds!A1"}, base.ErrWrongScheme},
		{base.Address{Scheme: Scheme, File: "nope", Path: "Meds!A1"}, base.ErrUnknownDocument},
		{base.Address{Scheme: Scheme, File: "meds.xls", Path: "garbled"}, base.ErrBadAddress},
		{base.Address{Scheme: Scheme, File: "meds.xls", Path: "NoSheet!A1"}, base.ErrBadAddress},
	}
	for _, c := range cases {
		if _, err := a.GoTo(c.addr); !errors.Is(err, c.want) {
			t.Errorf("GoTo(%v) = %v, want %v", c.addr, err, c.want)
		}
	}
}

func TestExtractContentDoesNotMoveViewer(t *testing.T) {
	a := appWithMeds(t)
	first := base.Address{Scheme: Scheme, File: "meds.xls", Path: "Meds!A2"}
	if _, err := a.GoTo(first); err != nil {
		t.Fatal(err)
	}
	got, err := a.ExtractContent(base.Address{Scheme: Scheme, File: "meds.xls", Path: "Meds!A3"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "Insulin" {
		t.Errorf("ExtractContent = %q", got)
	}
	sel, _ := a.CurrentSelection()
	if sel != first {
		t.Error("ExtractContent moved the viewer selection")
	}
}

func TestExtractContext(t *testing.T) {
	a := appWithMeds(t)
	ctx, err := a.ExtractContext(base.Address{Scheme: Scheme, File: "meds.xls", Path: "Meds!B2:B3"})
	if err != nil {
		t.Fatal(err)
	}
	want := "Furosemide\t40mg\tIV\nInsulin\t5u\tSC"
	if ctx != want {
		t.Errorf("ExtractContext = %q, want %q", ctx, want)
	}
}

func TestSelectionCreateResolveRoundTripProperty(t *testing.T) {
	// Whatever the user selects, resolving the resulting address returns
	// the same element — the fundamental mark invariant.
	a := appWithMeds(t)
	a.Open("meds.xls")
	for row := 0; row < 4; row++ {
		for col := 0; col < 3; col++ {
			r := Range{Start: CellRef{row, col}, End: CellRef{row, col}}
			if err := a.SelectRange("Meds", r); err != nil {
				t.Fatal(err)
			}
			addr, err := a.CurrentSelection()
			if err != nil {
				t.Fatal(err)
			}
			el, err := a.GoTo(addr)
			if err != nil {
				t.Fatalf("GoTo(%v): %v", addr, err)
			}
			w, _ := a.Workbook("meds.xls")
			s, _ := w.Sheet("Meds")
			if el.Content != s.Get(CellRef{row, col}) {
				t.Fatalf("round trip content %q != cell %q", el.Content, s.Get(CellRef{row, col}))
			}
		}
	}
}
