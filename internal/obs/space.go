package obs

import (
	"context"
	"fmt"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Process space accounting: where the bytes of the whole process live,
// read from runtime/metrics' memory-class accounting. The store-level
// space accountant (internal/trim/space.go) explains the bytes the store
// asked for; this file explains what the runtime is actually holding —
// in-use heap, heap retained-but-free, heap returned to the OS, stacks —
// plus the allocation-bytes rate between reads. ReadSpace republishes the
// numbers as the space_* gauge family on /metrics, /debug/space serves
// them as JSON next to the registered per-subsystem space sources, and
// SpaceCheck degrades /healthz when the in-use heap crosses the
// -mem-budget threshold.

// Memory-class metric names read by ReadSpace.
const (
	smHeapObjects  = "/memory/classes/heap/objects:bytes"
	smHeapUnused   = "/memory/classes/heap/unused:bytes"
	smHeapFree     = "/memory/classes/heap/free:bytes"
	smHeapReleased = "/memory/classes/heap/released:bytes"
	smHeapStacks   = "/memory/classes/heap/stacks:bytes"
	smOSStacks     = "/memory/classes/os-stacks:bytes"
	smTotal        = "/memory/classes/total:bytes"
	smGCCycles     = "/gc/cycles/total:gc-cycles"
	smAllocBytes   = "/gc/heap/allocs:bytes"
)

// SpaceInfo is one process-memory snapshot. HeapInuseBytes counts spans
// holding live or not-yet-swept objects (object bytes + span-internal
// fragmentation); HeapFreeBytes is heap memory the runtime retains for
// reuse; HeapReleasedBytes has been returned to the OS. TotalBytes is
// everything the runtime maps, so it bounds the process's resident
// footprint from the Go side.
type SpaceInfo struct {
	TimeUnixNS        int64  `json:"time_unix_ns"`
	HeapAllocBytes    uint64 `json:"heap_alloc_bytes"`
	HeapInuseBytes    uint64 `json:"heap_inuse_bytes"`
	HeapFreeBytes     uint64 `json:"heap_free_bytes"`
	HeapReleasedBytes uint64 `json:"heap_released_bytes"`
	StackBytes        uint64 `json:"stack_bytes"`
	TotalBytes        uint64 `json:"total_bytes"`
	GCCycles          uint64 `json:"gc_cycles"`
	// TotalAllocBytes is the cumulative allocation counter
	// (/gc/heap/allocs:bytes); AllocRateBytesPerSec is its rate since the
	// previous ReadSpace call (0 on the first read).
	TotalAllocBytes      uint64  `json:"total_alloc_bytes"`
	AllocRateBytesPerSec float64 `json:"alloc_rate_bytes_per_sec"`
	// MemBudgetBytes mirrors the -mem-budget threshold SpaceCheck degrades
	// on (0 = no budget).
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
}

// spaceState carries the previous cumulative read so consecutive
// ReadSpace calls yield an allocation rate.
var spaceState struct {
	mu         sync.Mutex
	prevAlloc  uint64
	prevTimeNS int64
}

// ReadSpace samples the runtime's memory-class accounting, updates the
// space_* gauges, and returns the snapshot. Safe for concurrent use.
func ReadSpace() SpaceInfo {
	samples := []metrics.Sample{
		{Name: smHeapObjects},
		{Name: smHeapUnused},
		{Name: smHeapFree},
		{Name: smHeapReleased},
		{Name: smHeapStacks},
		{Name: smOSStacks},
		{Name: smTotal},
		{Name: smGCCycles},
		{Name: smAllocBytes},
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	s := SpaceInfo{
		TimeUnixNS: time.Now().UnixNano(),
		// Heap in use = object bytes + span-internal fragmentation
		// (runtime/metrics splits MemStats.HeapInuse into these two classes).
		HeapAllocBytes:    u64(0),
		HeapInuseBytes:    u64(0) + u64(1),
		HeapFreeBytes:     u64(2),
		HeapReleasedBytes: u64(3),
		StackBytes:        u64(4) + u64(5),
		TotalBytes:        u64(6),
		GCCycles:          u64(7),
		TotalAllocBytes:   u64(8),
		MemBudgetBytes:    MemBudget(),
	}

	spaceState.mu.Lock()
	if spaceState.prevTimeNS != 0 && s.TimeUnixNS > spaceState.prevTimeNS && s.TotalAllocBytes >= spaceState.prevAlloc {
		dt := float64(s.TimeUnixNS-spaceState.prevTimeNS) / 1e9
		s.AllocRateBytesPerSec = float64(s.TotalAllocBytes-spaceState.prevAlloc) / dt
	}
	spaceState.prevAlloc = s.TotalAllocBytes
	spaceState.prevTimeNS = s.TimeUnixNS
	spaceState.mu.Unlock()

	G(NameSpaceHeapInuse).Set(int64(s.HeapInuseBytes))
	G(NameSpaceHeapFree).Set(int64(s.HeapFreeBytes))
	G(NameSpaceHeapReleased).Set(int64(s.HeapReleasedBytes))
	G(NameSpaceStacks).Set(int64(s.StackBytes))
	G(NameSpaceTotal).Set(int64(s.TotalBytes))
	G(NameSpaceGCCycles).Set(int64(s.GCCycles))
	G(NameSpaceAllocRate).Set(int64(s.AllocRateBytesPerSec))
	return s
}

// memBudget is the process-wide in-use-heap budget SpaceCheck degrades
// on; 0 disables the check.
var memBudget atomic.Int64

// SetMemBudget sets the in-use-heap budget in bytes (0 disables) and
// returns the previous value, so tests can flip and restore it.
func SetMemBudget(bytes int64) int64 {
	if bytes < 0 {
		bytes = 0
	}
	return memBudget.Swap(bytes)
}

// MemBudget returns the current in-use-heap budget (0 = none).
func MemBudget() int64 { return memBudget.Load() }

// SpaceCheck returns a health check that fails while the in-use heap
// exceeds the configured memory budget. With no budget set it always
// passes, so registering it unconditionally is safe.
func SpaceCheck() HealthCheck {
	return func(ctx context.Context) error {
		_ = ctx
		budget := MemBudget()
		if budget <= 0 {
			return nil
		}
		if inuse := ReadSpace().HeapInuseBytes; int64(inuse) > budget {
			return fmt.Errorf("heap in use %d bytes exceeds the %d-byte budget", inuse, budget)
		}
		return nil
	}
}

// SpaceReporter renders one subsystem's deep space report (any
// JSON-encodable value); the store's accountant walks its indexes under
// the read lock, so reporters are expected to be O(store) and are only
// called when /debug/space is scraped.
type SpaceReporter func() any

// SpaceSources is a registry of named per-subsystem space reporters. It
// keeps obs decoupled from the stores: trim (and anything else holding
// bulk data) registers a closure, /debug/space fans out to all of them.
type SpaceSources struct {
	mu      sync.RWMutex
	sources map[string]SpaceReporter
}

// NewSpaceSources returns an empty source registry.
func NewSpaceSources() *SpaceSources {
	return &SpaceSources{sources: make(map[string]SpaceReporter)}
}

// DefaultSpace is the process-wide space-source registry /debug/space
// renders.
var DefaultSpace = NewSpaceSources()

// Register adds (or replaces) a named reporter.
func (s *SpaceSources) Register(name string, fn SpaceReporter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources[name] = fn
}

// Unregister removes a named reporter.
func (s *SpaceSources) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sources, name)
}

// Report runs every registered reporter and returns the reports by name.
// Reporters run outside the registry lock, so they may take their own
// store locks without ordering against Register/Unregister.
func (s *SpaceSources) Report() map[string]any {
	s.mu.RLock()
	snapshot := make(map[string]SpaceReporter, len(s.sources))
	for name, fn := range s.sources {
		snapshot[name] = fn
	}
	s.mu.RUnlock()
	out := make(map[string]any, len(snapshot))
	for name, fn := range snapshot {
		out[name] = fn()
	}
	return out
}

// RegisterSpaceSource adds a reporter to the process-wide registry.
func RegisterSpaceSource(name string, fn SpaceReporter) {
	DefaultSpace.Register(name, fn)
}

// UnregisterSpaceSource removes a reporter from the process-wide registry.
func UnregisterSpaceSource(name string) {
	DefaultSpace.Unregister(name)
}
