package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// diagConfig builds a fully non-default ServeConfig so endpoint tests
// never touch the process-wide registries shared with other tests.
func diagConfig() (ServeConfig, *Registry, *HealthRegistry, *HealthRegistry) {
	reg := NewRegistry()
	health := NewHealthRegistry()
	ready := NewHealthRegistry()
	cfg := ServeConfig{
		Registry: reg,
		Tracer:   NewTracer(8),
		SlowOps:  NewSlowOpJournal(8, time.Millisecond),
		Health:   health,
		Ready:    ready,
	}
	return cfg, reg, health, ready
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestDiagMuxMetrics(t *testing.T) {
	cfg, reg, _, _ := diagConfig()
	reg.Counter("trim.create.total").Add(7)
	reg.Histogram("trim.select.ns", LatencyBounds).Observe(1500)
	srv := httptest.NewServer(NewDiagMux(cfg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"trim_create_total 7",
		"# TYPE trim_select_ns histogram",
		`trim_select_ns_bucket{le="+Inf"} 1`,
		"trim_select_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
}

func TestDiagMuxHealth(t *testing.T) {
	cfg, _, health, ready := diagConfig()
	health.Register("store.writable", func(context.Context) error { return nil })
	ready.Register("store.loaded", func(context.Context) error { return errors.New("store is empty") })
	srv := httptest.NewServer(NewDiagMux(cfg))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d:\n%s", code, body)
	}
	if !strings.Contains(body, "ok   store.writable") {
		t.Errorf("/healthz body:\n%s", body)
	}

	code, body = get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d, want 503:\n%s", code, body)
	}
	if !strings.Contains(body, "fail store.loaded: store is empty") {
		t.Errorf("/readyz body:\n%s", body)
	}

	// The check set is live: loading the store flips readiness.
	ready.Register("store.loaded", func(context.Context) error { return nil })
	if code, _ = get(t, srv, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after fix: status %d", code)
	}
}

func TestDiagMuxDebugEndpoints(t *testing.T) {
	cfg, _, _, _ := diagConfig()
	span := cfg.Tracer.Start("test.op", "detail")
	span.Finish()
	cfg.SlowOps.Observe("slow.op", "why", time.Now(), 5*time.Millisecond, nil)
	srv := httptest.NewServer(NewDiagMux(cfg))
	defer srv.Close()

	code, body := get(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var trace struct {
		Ops []OpRecord `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, body)
	}
	if len(trace.Ops) != 1 || trace.Ops[0].Op != "test.op" {
		t.Fatalf("/debug/trace ops: %+v", trace.Ops)
	}

	code, body = get(t, srv, "/debug/slowops")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowops status %d", code)
	}
	var slow struct {
		Ops []SlowOp `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatalf("/debug/slowops not JSON: %v\n%s", err, body)
	}
	if len(slow.Ops) != 1 || slow.Ops[0].Op != "slow.op" {
		t.Fatalf("/debug/slowops ops: %+v", slow.Ops)
	}

	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get(t, srv, "/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}

	code, body = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "SLIM diagnostics") {
		t.Fatalf("index: status %d body:\n%s", code, body)
	}
	if code, _ := get(t, srv, "/no/such/page"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestServeSingleton covers the -serve lifecycle: the active-server slot,
// the second-server error, and slot release on Close.
func TestServeSingleton(t *testing.T) {
	if ActiveServer() != nil {
		t.Fatal("active server leaked from another test")
	}
	cfg, reg, _, _ := diagConfig()
	reg.Counter("core.test.total").Inc()
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if ActiveServer() != s {
		t.Fatal("Serve did not register the active server")
	}
	if _, err := Serve("127.0.0.1:0", cfg); err == nil {
		t.Fatal("second Serve must fail while one is active")
	}

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "core_test_total 1") {
		t.Fatalf("scrape:\n%s", body)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ActiveServer() != nil {
		t.Fatal("Close did not release the active-server slot")
	}
	s2, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
	s2.Close()
}
