package obs

import (
	"encoding/json"
	"io"
)

// EncodeJSON writes v as two-space-indented JSON followed by a newline:
// the one JSON encoder shared by the machine-readable CLI outputs
// (trimq -json, markctl doctor -json) and the diagnostics endpoints, so
// every lane emits the same shape for the same value.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
