package obs

import "context"

// Context propagation for trace identity. Span values themselves are
// goroutine-local; what crosses API boundaries and goroutine hops is the
// context carrying the current span, from which callees start children.
// ContextWithSpan and StartCtx are the sanctioned context constructors for
// library code (the ctxflow analyzer knows them); nowhere below fabricates
// a deadline or cancellation, only a value.

// spanCtxKey is the private context key for the current span.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span. A nil
// ctx is treated as context.Background(), so plain (non-Ctx) entry points
// can delegate to their Ctx variants with nil. A nil span is stored as-is;
// SpanFromContext hands it back and child starts no-op.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartCtx starts a span as a child of the span carried by ctx — or as a
// new root when ctx carries none — and returns ctx re-wrapped around the
// new span. This is the one-liner every *Ctx seam uses:
//
//	ctx, sp := obs.StartCtx(ctx, "dmi.create", id)
//	defer sp.Finish()
//
// A nil ctx is treated as context.Background(). When the tracer is
// disabled the input ctx comes back untouched with a nil span.
func StartCtx(ctx context.Context, op, detail string) (context.Context, *Span) {
	return DefaultTracer.StartCtx(ctx, op, detail)
}

// StartCtx is the method form of the package-level StartCtx, for code
// holding its own Tracer. A parent span recorded by a different tracer is
// ignored: the child becomes a root here rather than linking rings.
func (tr *Tracer) StartCtx(ctx context.Context, op, detail string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !tr.Enabled() {
		return ctx, nil
	}
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil && parent.tr == tr {
		s = parent.Child(op, detail)
	} else {
		s = tr.root(op, detail)
	}
	return ContextWithSpan(ctx, s), s
}
