package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Per-trace assembly: the ring holds finished spans flat and interleaved
// across traces; these helpers pull one trace's records out and rebuild
// the parent/child tree for /debug/trace/{id}, trimq trace, and the
// Perfetto exporter.

// TraceNode is one span in a reassembled trace tree.
type TraceNode struct {
	OpRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// traceNodeJSON flattens the record fields next to children. Without it the
// embedded OpRecord's custom MarshalJSON would be promoted to TraceNode and
// silently drop Children.
type traceNodeJSON struct {
	opRecordJSON
	Children []*TraceNode `json:"children,omitempty"`
}

// MarshalJSON emits the record's wire shape with a children array.
func (n TraceNode) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceNodeJSON{opRecordJSON: n.OpRecord.wire(), Children: n.Children})
}

// UnmarshalJSON accepts the same shape.
func (n *TraceNode) UnmarshalJSON(b []byte) error {
	var w traceNodeJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	n.OpRecord = w.opRecordJSON.record()
	n.Children = w.Children
	return nil
}

// TraceTree is a reassembled trace. Roots usually holds one node; it holds
// several when the ring wrapped past a trace's real root (the surviving
// orphans are promoted) or when an unsampled trace recorded only its error
// spans.
type TraceTree struct {
	ID    TraceID      `json:"trace_id"`
	Roots []*TraceNode `json:"roots"`
	// Spans counts the records retained for this trace.
	Spans int `json:"spans"`
}

// TraceOps returns the retained records of one trace, oldest-first, or nil
// when the ring holds none.
func (tr *Tracer) TraceOps(id TraceID) []OpRecord {
	var out []OpRecord
	for _, r := range tr.Recent() {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	return out
}

// Trace reassembles the retained spans of one trace into a tree. Returns
// nil when the ring holds no record of the trace.
func (tr *Tracer) Trace(id TraceID) *TraceTree {
	return assembleTree(id, tr.TraceOps(id))
}

func assembleTree(id TraceID, recs []OpRecord) *TraceTree {
	if len(recs) == 0 {
		return nil
	}
	nodes := make(map[SpanID]*TraceNode, len(recs))
	for _, r := range recs {
		nodes[r.Span] = &TraceNode{OpRecord: r}
	}
	t := &TraceTree{ID: id, Spans: len(recs)}
	for _, r := range recs {
		n := nodes[r.Span]
		if parent, ok := nodes[r.Parent]; ok && r.Parent != 0 {
			parent.Children = append(parent.Children, n)
		} else {
			// True root, or an orphan whose ancestors fell off the ring.
			t.Roots = append(t.Roots, n)
		}
	}
	sortNodes(t.Roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return t
}

func sortNodes(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].Seq < ns[j].Seq
	})
}

// WriteText dumps the tree indented by causal depth, children under their
// parents in start order.
func (t *TraceTree) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== trace %s (%d spans) ==\n", t.ID, t.Spans); err != nil {
		return err
	}
	var walk func(n *TraceNode, indent string) error
	walk = func(n *TraceNode, indent string) error {
		suffix := ""
		if n.Err != "" {
			suffix = " err=" + n.Err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s %s%s\n",
			indent, n.Op, n.Detail, n.Dur.Round(time.Microsecond), suffix); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, indent+"  "); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r, ""); err != nil {
			return err
		}
	}
	return nil
}

// TraceSummary is one entry in the recent-roots index (/debug/traces).
type TraceSummary struct {
	Trace TraceID   `json:"trace_id"`
	Op    string    `json:"op"`
	Detail string   `json:"detail,omitempty"`
	Start time.Time `json:"start"`
	DurNS int64     `json:"dur_ns"`
	Err   string    `json:"err,omitempty"`
	// Spans counts the retained records of the whole trace.
	Spans int `json:"spans"`
}

// Roots summarizes the retained traces, newest root first. Traces whose
// root fell off the ring are summarized by their oldest surviving span.
func (tr *Tracer) Roots() []TraceSummary {
	recs := tr.Recent()
	spanCount := make(map[TraceID]int, len(recs))
	best := make(map[TraceID]OpRecord, len(recs))
	var order []TraceID
	for _, r := range recs {
		if spanCount[r.Trace] == 0 {
			order = append(order, r.Trace)
			best[r.Trace] = r
		}
		spanCount[r.Trace]++
		// Prefer the shallowest span as the trace's face; ties keep the
		// earliest (records arrive finish-ordered, roots finish last).
		if b := best[r.Trace]; r.Depth < b.Depth {
			best[r.Trace] = r
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		b := best[id]
		out = append(out, TraceSummary{
			Trace: id, Op: b.Op, Detail: b.Detail, Start: b.Start,
			DurNS: int64(b.Dur), Err: b.Err, Spans: spanCount[id],
		})
	}
	return out
}
