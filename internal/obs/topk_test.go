package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestTopKExactWithinCapacity: while distinct keys stay within capacity
// every count is exact, no evictions happen, and Top orders
// count-descending with key-ascending tie-breaks.
func TestTopKExactWithinCapacity(t *testing.T) {
	s := NewTopK(8)
	for i := 0; i < 5; i++ {
		s.Record("select spo")
	}
	s.RecordN("view s??", 3)
	s.Record("path **")
	s.Record("select ?p?")
	s.RecordN("ignored", 0)
	s.RecordN("ignored", -4)

	if got, want := s.Len(), 4; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := s.Recorded(), int64(10); got != want {
		t.Fatalf("Recorded = %d, want %d", got, want)
	}
	if got := s.Evicted(); got != 0 {
		t.Fatalf("Evicted = %d, want 0", got)
	}
	want := []TopEntry{
		{Key: "select spo", Count: 5},
		{Key: "view s??", Count: 3},
		{Key: "path **", Count: 1},
		{Key: "select ?p?", Count: 1},
	}
	got := s.Top(0)
	if len(got) != len(want) {
		t.Fatalf("Top(0) = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top(0)[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if top2 := s.Top(2); len(top2) != 2 || top2[0] != want[0] || top2[1] != want[1] {
		t.Fatalf("Top(2) = %+v", top2)
	}
}

// TestTopKEviction: a miss on a full sketch evicts the minimum-count key
// and the newcomer inherits its count as the error bound (space-saving
// invariant: Count overestimates by at most ErrBound).
func TestTopKEviction(t *testing.T) {
	s := NewTopK(2)
	s.RecordN("a", 3)
	s.RecordN("b", 2)
	s.Record("c") // evicts b (min), c starts at 2+1 with ErrBound 2

	if got := s.Evicted(); got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
	got := s.Top(0)
	want := []TopEntry{
		{Key: "a", Count: 3},
		{Key: "c", Count: 3, ErrBound: 2},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Top(0) = %+v, want %+v", got, want)
	}
	if got, want := s.Recorded(), int64(6); got != want {
		t.Fatalf("Recorded = %d, want %d", got, want)
	}
}

// TestTopKEvictionTieBreak: when several entries share the minimum count
// the smaller key is evicted, so a deterministic workload always yields
// the same sketch.
func TestTopKEvictionTieBreak(t *testing.T) {
	s := NewTopK(2)
	s.Record("b")
	s.Record("a")
	s.Record("c") // min count 1 shared by a and b; a (smaller key) goes

	got := s.Top(0)
	want := []TopEntry{
		{Key: "c", Count: 2, ErrBound: 1},
		{Key: "b", Count: 1},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Top(0) = %+v, want %+v", got, want)
	}
}

// TestTopKHeavyHitterSurvivesChurn: a genuinely heavy key keeps its rank
// through eviction churn from a long tail of one-off keys.
func TestTopKHeavyHitterSurvivesChurn(t *testing.T) {
	s := NewTopK(4)
	for i := 0; i < 100; i++ {
		s.Record("hot")
		s.Record(fmt.Sprintf("cold-%03d", i))
	}
	top := s.Top(1)
	if len(top) != 1 || top[0].Key != "hot" {
		t.Fatalf("Top(1) = %+v, want the hot key", top)
	}
	// Space-saving bound: estimated count is never below the true count.
	if top[0].Count < 100 {
		t.Fatalf("hot count = %d, want >= 100", top[0].Count)
	}
	if s.Evicted() == 0 {
		t.Fatal("churn workload forced no evictions")
	}
}

// TestTopKReset: Reset empties the sketch and zeroes the totals.
func TestTopKReset(t *testing.T) {
	s := NewTopK(1)
	s.Record("a")
	s.Record("b")
	s.Reset()
	if s.Len() != 0 || s.Recorded() != 0 || s.Evicted() != 0 {
		t.Fatalf("after Reset: len=%d recorded=%d evicted=%d", s.Len(), s.Recorded(), s.Evicted())
	}
	s.Record("c")
	if got := s.Top(0); len(got) != 1 || got[0] != (TopEntry{Key: "c", Count: 1}) {
		t.Fatalf("post-Reset Top = %+v", got)
	}
}

// TestTopKMarshalJSON: the /debug/top document carries capacity, totals,
// and a never-null entries array.
func TestTopKMarshalJSON(t *testing.T) {
	s := NewTopK(3)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int        `json:"capacity"`
		Recorded int64      `json:"recorded"`
		Evicted  int64      `json:"evicted"`
		Entries  []TopEntry `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 3 || doc.Entries == nil || len(doc.Entries) != 0 {
		t.Fatalf("empty sketch JSON = %s", data)
	}

	s.RecordN("a", 2)
	s.Record("b")
	data, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded != 3 || len(doc.Entries) != 2 || doc.Entries[0].Key != "a" {
		t.Fatalf("sketch JSON = %s", data)
	}
}

// TestTopKConcurrent: concurrent recorders on a small sketch neither race
// nor lose the recorded total.
func TestTopKConcurrent(t *testing.T) {
	s := NewTopK(4)
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Record(fmt.Sprintf("key-%d", (g+i)%6))
			}
		}(g)
	}
	wg.Wait()
	if got, want := s.Recorded(), int64(goroutines*each); got != want {
		t.Fatalf("Recorded = %d, want %d", got, want)
	}
	if got := s.Len(); got > 4 {
		t.Fatalf("Len = %d exceeds capacity 4", got)
	}
}

// TestTopKNilSafe: a nil sketch answers every method harmlessly.
func TestTopKNilSafe(t *testing.T) {
	var s *TopK
	s.Record("a")
	s.RecordN("a", 2)
	s.Reset()
	if s.Top(1) != nil || s.Len() != 0 || s.Recorded() != 0 || s.Evicted() != 0 {
		t.Fatal("nil sketch misbehaved")
	}
}

// TestRecordQueryShape: the package-level helper lands shapes in
// DefaultTopQueries and bumps the self-accounting counter.
func TestRecordQueryShape(t *testing.T) {
	before := C(NameObsTopRecorded).Value()
	RecordQueryShape("test.shape select s?? index=subject")
	if got := C(NameObsTopRecorded).Value(); got != before+1 {
		t.Fatalf("%s = %d, want %d", NameObsTopRecorded, got, before+1)
	}
	for _, e := range DefaultTopQueries.Top(0) {
		if e.Key == "test.shape select s?? index=subject" {
			return
		}
	}
	t.Fatal("recorded shape not present in DefaultTopQueries")
}
