package obs

import (
	"encoding/json"
	"expvar"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	// Same-name lookups share the counter.
	if r.Counter("test.concurrent") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []int64{10, 100, 1000})
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*100 + 1)) // spread across buckets
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total = %d, count = %d", inBuckets, s.Count)
	}
	if len(s.Buckets) != len(s.Bounds)+1 {
		t.Fatalf("buckets = %d, want bounds+1 = %d", len(s.Buckets), len(s.Bounds)+1)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.buckets", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2} // le_10, le_100, inf
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], n, s.Buckets)
		}
	}
	// rank(0.5 * 6) = 3rd smallest = 11, which lives in the le_100 bucket.
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(0.33); q != 10 {
		t.Errorf("p33 = %d, want 10", q)
	}
	if q := s.Quantile(1.0); q != 100 {
		t.Errorf("p100 upper bound = %d, want 100 (largest finite)", q)
	}
}

func TestRegistryExportDeterministic(t *testing.T) {
	r := NewRegistry()
	// Create in non-sorted order.
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Add(1)
	r.Counter("m.middle").Add(2)
	r.Histogram("z.hist", SizeBounds).Observe(4)
	r.Histogram("a.hist", SizeBounds).Observe(2)

	var one, two strings.Builder
	if err := r.WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("non-deterministic text export:\n%s\nvs\n%s", one.String(), two.String())
	}
	text := one.String()
	if !strings.HasPrefix(text, "== obs metrics ==\n") {
		t.Fatalf("missing header: %q", text)
	}
	ia, im, iz := strings.Index(text, "a.first"), strings.Index(text, "m.middle"), strings.Index(text, "z.last")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("counters not sorted: a=%d m=%d z=%d\n%s", ia, im, iz, text)
	}
	if ah, zh := strings.Index(text, "a.hist"), strings.Index(text, "z.hist"); !(iz < ah && ah < zh) {
		t.Fatalf("histograms not sorted after counters:\n%s", text)
	}

	j1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("non-deterministic JSON export")
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("invalid JSON export: %v", err)
	}
	if decoded.Counters["m.middle"] != 2 || decoded.Histograms["a.hist"].Count != 1 {
		t.Fatalf("JSON export values wrong: %s", j1)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("outer", "r")
	child := root.Child("inner", "c")
	grand := child.Child("innermost", "g")
	grand.Finish()
	child.Finish()
	root.Finish()

	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(recs))
	}
	// Finish order: deepest first.
	wantOps := []string{"innermost", "inner", "outer"}
	wantDepth := []int{2, 1, 0}
	for i, r := range recs {
		if r.Op != wantOps[i] || r.Depth != wantDepth[i] {
			t.Errorf("rec %d = %s depth=%d, want %s depth=%d", i, r.Op, r.Depth, wantOps[i], wantDepth[i])
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("rec %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("op", "d").Finish()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("retained %d ops, want 4", len(recs))
	}
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Errorf("rec %d seq = %d, want %d (oldest-first)", i, r.Seq, want)
		}
	}
	var dump strings.Builder
	if err := tr.WriteText(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "== recent ops (4) ==") || !strings.Contains(dump.String(), "#10 ") {
		t.Fatalf("dump = %q", dump.String())
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(false)
	if s := tr.Start("op", ""); s != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	// All nil-receiver paths must be safe no-ops.
	var nilSpan *Span
	nilSpan.Finish()
	nilSpan.FinishErr(nil)
	if c := nilSpan.Child("x", ""); c != nil {
		t.Fatal("nil span produced a child")
	}
	var nilTracer *Tracer
	nilTracer.SetEnabled(true)
	if nilTracer.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if recs := nilTracer.Recent(); recs != nil {
		t.Fatal("nil tracer has records")
	}
	tr.SetEnabled(true)
	tr.Start("op", "").Finish()
	if len(tr.Recent()) != 1 {
		t.Fatal("re-enabled tracer did not record")
	}
	tr.Reset()
	if len(tr.Recent()) != 0 {
		t.Fatal("reset tracer still has records")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("op", "d")
				sp.Child("child", "").Finish()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	recs := tr.Recent()
	if len(recs) != 32 {
		t.Fatalf("retained %d, want 32", len(recs))
	}
	if recs[len(recs)-1].Seq != 1600 {
		t.Fatalf("last seq = %d, want 1600", recs[len(recs)-1].Seq)
	}
}

func TestLogNilSafeDefault(t *testing.T) {
	if LogEnabled() {
		t.Fatal("logging enabled before SetLogger")
	}
	// Must not panic and must build no records.
	Log().Info("dropped", "k", "v")

	var buf strings.Builder
	SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	defer SetLogger(nil)
	if !LogEnabled() {
		t.Fatal("logging not enabled after SetLogger")
	}
	Log().Info("kept", "k", "v")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatalf("log output = %q", buf.String())
	}
	SetLogger(nil)
	if LogEnabled() {
		t.Fatal("logging still enabled after SetLogger(nil)")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("exp.counter").Add(7)
	r.PublishExpvar("test.obs.registry")
	r.PublishExpvar("test.obs.registry") // second call must not panic
	v := expvar.Get("test.obs.registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), `"exp.counter":7`) {
		t.Fatalf("expvar value = %s", v.String())
	}
}

func TestStartCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}
	// A second profile while none is running must work.
	stop2, err := StartCPUProfile(filepath.Join(t.TempDir(), "cpu2.prof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}
