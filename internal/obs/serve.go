package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// The diagnostics server makes the whole observability layer reachable
// from outside the process — the step from "dump metrics at exit" to a
// live store that scrapers, probes, and humans can interrogate while it
// serves traffic. It is plain net/http on a plain listener; every
// endpoint renders from the same process-wide defaults the -metrics and
// -trace flags print.
//
//	/metrics           Prometheus text exposition of the metric registry
//	/metrics.json      the same registry as JSON
//	/healthz           liveness checks (DefaultHealth); 503 when any fails
//	/readyz            readiness checks (DefaultReady); 503 when any fails
//	/debug/trace       JSON dump of the ring-buffered op tracer
//	/debug/traces      recent trace roots index (JSON)
//	/debug/trace/{id}  one trace reassembled as a tree (?perfetto=1 for
//	                   Chrome trace-event JSON)
//	/debug/flight      runtime flight recorder ring (JSON)
//	/debug/load        windowed 1m/5m rates and delta percentiles (JSON)
//	/debug/top         heavy-hitter query shapes, space-saving top-K (JSON)
//	/debug/contention  tracked-lock wait/hold stats (JSON)
//	/debug/space       process memory classes + per-subsystem space reports
//	/debug/slowops     JSON dump of the slow-op journal
//	/debug/vars        expvar
//	/debug/pprof/      CPU, heap, goroutine, ... profiles (net/http/pprof)

// ServeConfig selects the sources a diagnostics server renders. Zero
// fields fall back to the process-wide defaults, so the zero value serves
// everything the binaries record.
type ServeConfig struct {
	Registry *Registry
	Tracer   *Tracer
	SlowOps  *SlowOpJournal
	Health   *HealthRegistry
	Ready    *HealthRegistry
	Flight   *FlightRecorder
	Window   *WindowSampler
	Top      *TopK
	Locks    *LockTable
	Space    *SpaceSources
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Registry == nil {
		c.Registry = Default
	}
	if c.Tracer == nil {
		c.Tracer = DefaultTracer
	}
	if c.SlowOps == nil {
		c.SlowOps = DefaultSlowOps
	}
	if c.Health == nil {
		c.Health = DefaultHealth
	}
	if c.Ready == nil {
		c.Ready = DefaultReady
	}
	if c.Flight == nil {
		c.Flight = DefaultFlight
	}
	if c.Window == nil {
		c.Window = DefaultWindow
	}
	if c.Top == nil {
		c.Top = DefaultTopQueries
	}
	if c.Locks == nil {
		c.Locks = DefaultLocks
	}
	if c.Space == nil {
		c.Space = DefaultSpace
	}
	return c
}

// DiagServer is a running diagnostics server.
type DiagServer struct {
	lis net.Listener
	srv *http.Server
}

// Addr returns the server's bound address (useful with ":0").
func (s *DiagServer) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *DiagServer) URL() string { return "http://" + s.Addr() }

// Close shuts the server down and releases the active-server slot when
// this server holds it.
func (s *DiagServer) Close() error {
	activeServer.CompareAndSwap(s, nil)
	return s.srv.Close()
}

// activeServer is the process's -serve server, if any; binaries consult it
// after their command completes to keep the process alive for scraping.
var activeServer atomic.Pointer[DiagServer]

// ActiveServer returns the diagnostics server started by the -serve flag,
// or nil when none is running.
func ActiveServer() *DiagServer { return activeServer.Load() }

// NewDiagMux builds the diagnostics endpoint mux over the given sources.
func NewDiagMux(cfg ServeConfig) *http.ServeMux {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "SLIM diagnostics\n\n"+
			"/metrics           Prometheus text exposition\n"+
			"/metrics.json      metric registry as JSON\n"+
			"/healthz           liveness checks\n"+
			"/readyz            readiness checks\n"+
			"/debug/trace       recent-ops ring buffer (JSON)\n"+
			"/debug/traces      recent trace roots index (JSON)\n"+
			"/debug/trace/{id}  one trace as a tree (?perfetto=1 for trace-event JSON)\n"+
			"/debug/flight      runtime flight recorder (JSON)\n"+
			"/debug/load        windowed 1m/5m rates and delta percentiles (JSON)\n"+
			"/debug/top         heavy-hitter query shapes (JSON)\n"+
			"/debug/contention  tracked-lock wait/hold stats (JSON)\n"+
			"/debug/space       process + store space accounting (JSON)\n"+
			"/debug/slowops     slow-op journal (JSON)\n"+
			"/debug/vars        expvar\n"+
			"/debug/pprof/      runtime profiles\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
		cfg.Window.WritePrometheusRates(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.Registry)
	})

	serveHealth := func(reg *HealthRegistry) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			results := reg.Run(r.Context())
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !Healthy(results) {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			for _, res := range results {
				if res.OK {
					fmt.Fprintf(w, "ok   %s (%s)\n", res.Name, time.Duration(res.DurNS).Round(time.Microsecond))
				} else {
					fmt.Fprintf(w, "fail %s: %s\n", res.Name, res.Err)
				}
			}
			if Healthy(results) {
				fmt.Fprintln(w, "ok")
			}
		}
	}
	mux.HandleFunc("/healthz", serveHealth(cfg.Health))
	mux.HandleFunc("/readyz", serveHealth(cfg.Ready))

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, struct {
			Ops []OpRecord `json:"ops"`
		}{Ops: cfg.Tracer.Recent()})
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, struct {
			Traces []TraceSummary `json:"traces"`
		}{Traces: cfg.Tracer.Roots()})
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		id, err := ParseTraceID(strings.TrimPrefix(r.URL.Path, "/debug/trace/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("perfetto") != "" {
			ops := cfg.Tracer.TraceOps(id)
			if len(ops) == 0 {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			WriteTraceEvents(w, ops)
			return
		}
		t := cfg.Tracer.Trace(id)
		if t == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, t)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.Flight)
	})
	mux.HandleFunc("/debug/load", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.Window.Load())
	})
	mux.HandleFunc("/debug/top", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.Top)
	})
	mux.HandleFunc("/debug/contention", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.Locks)
	})
	mux.HandleFunc("/debug/space", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, struct {
			Runtime SpaceInfo      `json:"runtime"`
			Sources map[string]any `json:"sources"`
		}{ReadSpace(), cfg.Space.Report()})
	})
	mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		EncodeJSON(w, cfg.SlowOps)
	})

	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts a diagnostics server on addr (":0" picks a free port) and
// registers it as the process's active server. It fails when another
// Serve-started server is already active.
func Serve(addr string, cfg ServeConfig) (*DiagServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	s := &DiagServer{
		lis: lis,
		srv: &http.Server{
			Handler:           NewDiagMux(cfg),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	if !activeServer.CompareAndSwap(nil, s) {
		lis.Close()
		return nil, fmt.Errorf("obs: a diagnostics server is already running at %s", ActiveServer().Addr())
	}
	// slimvet:gorolife Serve returns when Close/Shutdown closes the listener; the DiagServer owns that lifecycle
	go s.srv.Serve(lis)
	return s, nil
}

// AwaitInterrupt blocks until the process receives SIGINT or SIGTERM, or
// ctx is cancelled: what binaries call after their command completes when
// -serve asked the process to stay up for scraping.
func AwaitInterrupt(ctx context.Context) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(ch)
	select {
	case <-ch:
	case <-ctx.Done():
	}
}
