package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// LatencyBounds are the standard latency bucket upper bounds in
// nanoseconds: 1µs to 1s on a 1-5-10 ladder, plus an implicit +Inf bucket.
// They cover everything from an index-served TRIM select (~µs) to a full
// pad load (~ms–s).
var LatencyBounds = []int64{
	1_000, 5_000, 10_000, 50_000, 100_000, 500_000, // 1µs .. 500µs
	1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000, 500_000_000, // 1ms .. 500ms
	1_000_000_000, // 1s
}

// SizeBounds are the standard bucket upper bounds for count-valued
// histograms (batch sizes, triples touched per DMI op).
var SizeBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// Histogram is a fixed-bucket histogram with atomic buckets: Observe is
// lock-free and safe for concurrent use. Bucket i counts observations
// v <= bounds[i]; the final bucket counts everything larger (+Inf).
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := make([]int64, len(bounds))
	copy(bs, bounds)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start: the one-liner
// for latency instrumentation (defer-friendly via a captured time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// observeN records n observations of value v in one shot: the bulk entry
// point for replaying external distributions (runtime/metrics bucket
// deltas) into a registry histogram without n separate Observe calls.
func (h *Histogram) observeN(v, n int64) {
	if n <= 0 {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough copy of a histogram for export.
// (Individual loads are atomic; a snapshot taken mid-Observe may be off by
// the in-flight observation, which is fine for monitoring.)
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Bounds[i] is the inclusive upper bound of Buckets[i]; Buckets has one
	// more entry than Bounds — the +Inf bucket.
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket containing the q*Count-th observation. The
// +Inf bucket reports the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// bucketString renders the buckets cumulatively with explicit upper
// bounds: every bucket that received observations prints its bound and the
// cumulative count at that bound, and the line always ends with the total
// at le_inf — " le_1000=3 le_5000=5 le_inf=7". Cumulative counts are
// monotone by construction, matching the Prometheus exposition.
func (s HistogramSnapshot) bucketString() string {
	var b strings.Builder
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if i == len(s.Bounds) {
			fmt.Fprintf(&b, " le_inf=%d", cum)
		} else if n != 0 {
			fmt.Fprintf(&b, " le_%d=%d", s.Bounds[i], cum)
		}
	}
	return b.String()
}
