package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
)

// logger holds the process-wide structured logger; nil means disabled.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs l as the SLIM stack's structured logger. Passing nil
// disables logging again (the default).
func SetLogger(l *slog.Logger) {
	logger.Store(l)
}

// Log returns the current structured logger, never nil: when none is
// installed it returns a logger whose handler rejects every level, so hot
// paths pay one atomic load plus one Enabled check and build no records.
func Log() *slog.Logger {
	if l := logger.Load(); l != nil {
		return l
	}
	return nopLogger
}

// LogEnabled reports whether a real logger is installed; guards for log
// call sites that would otherwise compute expensive attributes.
func LogEnabled() bool { return logger.Load() != nil }

var nopLogger = slog.New(discardHandler{})

// discardHandler is slog's /dev/null: Enabled is false for every level, so
// the slog front end short-circuits before building records. (The stdlib
// gained slog.DiscardHandler in a later Go release; this keeps go.mod at
// its current floor.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
