package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestStartCtxPropagation drives the cross-goroutine contract under the
// race detector: the context, not the span, crosses goroutine hops, and
// children started on other goroutines still land in the parent's tree.
func TestStartCtxPropagation(t *testing.T) {
	tr := NewTracer(128)
	ctx, root := tr.StartCtx(nil, "test.root", "")
	if root == nil {
		t.Fatal("StartCtx on an enabled tracer returned a nil span")
	}
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %p, want the root %p", got, root)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			childCtx, child := tr.StartCtx(ctx, "test.child", "")
			_, grand := tr.StartCtx(childCtx, "test.grandchild", "")
			grand.Finish()
			child.Finish()
		}()
	}
	wg.Wait()
	root.Finish()

	recs := tr.TraceOps(root.TraceID())
	if want := 2*workers + 1; len(recs) != want {
		t.Fatalf("trace holds %d records, want %d", len(recs), want)
	}
	spanParents := map[SpanID]SpanID{}
	for _, r := range recs {
		if r.Trace != root.TraceID() {
			t.Fatalf("record %q has trace %s, want %s", r.Op, r.Trace, root.TraceID())
		}
		spanParents[r.Span] = r.Parent
	}
	for _, r := range recs {
		switch r.Op {
		case "test.root":
			if r.Parent != 0 || r.Depth != 0 {
				t.Errorf("root record = %+v", r)
			}
		case "test.child":
			if r.Parent != root.SpanID() || r.Depth != 1 {
				t.Errorf("child record = %+v (root span %s)", r, root.SpanID())
			}
		case "test.grandchild":
			if parent := spanParents[r.Parent]; parent != root.SpanID() || r.Depth != 2 {
				t.Errorf("grandchild record = %+v; its parent's parent = %s, want root %s",
					r, parent, root.SpanID())
			}
		}
	}

	tree := tr.Trace(root.TraceID())
	if tree == nil || len(tree.Roots) != 1 || tree.Spans != 2*workers+1 {
		t.Fatalf("tree = %+v", tree)
	}
	if got := len(tree.Roots[0].Children); got != workers {
		t.Fatalf("root has %d children, want %d", got, workers)
	}
}

// TestStartCtxForeignParent: a span recorded by one tracer does not chain
// into another tracer's ring — the child becomes a fresh root instead.
func TestStartCtxForeignParent(t *testing.T) {
	a, b := NewTracer(8), NewTracer(8)
	ctx, pa := a.StartCtx(nil, "a.root", "")
	_, child := b.StartCtx(ctx, "b.root", "")
	if child.TraceID() == pa.TraceID() {
		t.Fatalf("span on tracer b inherited tracer a's trace id %s", pa.TraceID())
	}
	child.Finish()
	recs := b.Recent()
	if len(recs) != 1 || recs[0].Parent != 0 || recs[0].Depth != 0 {
		t.Fatalf("foreign-parent child recorded as %+v, want a fresh root", recs)
	}
}

// TestSamplingDeterministic locks the rate-0 and rate-1 edges: no coin
// flip, and error spans always record.
func TestSamplingDeterministic(t *testing.T) {
	tr := NewTracer(32)

	tr.SetSampleRate(0)
	for i := 0; i < 10; i++ {
		_, sp := tr.StartCtx(nil, "test.dropped", "")
		if sp.Sampled() {
			t.Fatal("rate 0 sampled a root")
		}
		sp.Finish()
	}
	if recs := tr.Recent(); len(recs) != 0 {
		t.Fatalf("rate 0 recorded %d clean spans", len(recs))
	}
	// Always-on-error: the failing span still lands in the ring.
	_, sp := tr.StartCtx(nil, "test.failure", "")
	sp.FinishErr(errors.New("boom"))
	recs := tr.Recent()
	if len(recs) != 1 || recs[0].Err != "boom" {
		t.Fatalf("rate 0 with error recorded %+v, want the one failing span", recs)
	}

	tr.Reset()
	tr.SetSampleRate(1)
	for i := 0; i < 10; i++ {
		_, sp := tr.StartCtx(nil, "test.kept", "")
		if !sp.Sampled() {
			t.Fatal("rate 1 dropped a root")
		}
		sp.Finish()
	}
	if recs := tr.Recent(); len(recs) != 10 {
		t.Fatalf("rate 1 recorded %d spans, want 10", len(recs))
	}

	// Children inherit the root's decision rather than re-flipping.
	tr.Reset()
	tr.SetSampleRate(0)
	ctx, root := tr.StartCtx(nil, "test.root", "")
	_, child := tr.StartCtx(ctx, "test.child", "")
	if child.Sampled() {
		t.Fatal("child re-sampled under an unsampled root")
	}
	child.Finish()
	root.Finish()
	if recs := tr.Recent(); len(recs) != 0 {
		t.Fatalf("unsampled family recorded %+v", recs)
	}

	// Out-of-range rates clamp.
	tr.SetSampleRate(7)
	if got := tr.SampleRate(); got != 1 {
		t.Fatalf("SetSampleRate(7) → %v, want 1", got)
	}
	tr.SetSampleRate(-3)
	if got := tr.SampleRate(); got != 0 {
		t.Fatalf("SetSampleRate(-3) → %v, want 0", got)
	}
}

// TestOpRecordJSONShape pins the wire format: machine-first timing
// (start_unix_ns, dur_ns), hex ids, and the legacy RFC3339 start key kept
// one release for old scrapers.
func TestOpRecordJSONShape(t *testing.T) {
	rec := OpRecord{
		Seq: 7, Trace: 0xabcd, Span: 0x12, Parent: 0x11,
		Op: "trim.select", Detail: "s??", Depth: 2,
		Start: time.Unix(100, 250).UTC(), Dur: 1500 * time.Nanosecond,
		Err: "boom",
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]any{
		"seq":           float64(7),
		"trace_id":      "000000000000abcd",
		"span_id":       "0000000000000012",
		"parent_id":     "0000000000000011",
		"op":            "trim.select",
		"start_unix_ns": float64(100*1e9 + 250),
		"dur_ns":        float64(1500),
		"err":           "boom",
	} {
		if got := m[key]; got != want {
			t.Errorf("json[%q] = %v (%T), want %v", key, got, got, want)
		}
	}
	if _, ok := m["start"].(string); !ok {
		t.Errorf("legacy start key missing: %v", m)
	}

	var back OpRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Start.Equal(rec.Start) || back.Dur != rec.Dur || back.Trace != rec.Trace ||
		back.Span != rec.Span || back.Parent != rec.Parent {
		t.Fatalf("round trip = %+v, want %+v", back, rec)
	}

	// Legacy payloads without start_unix_ns still parse via the RFC3339 key.
	var legacy OpRecord
	if err := json.Unmarshal([]byte(`{"seq":1,"op":"x","start":"2026-01-02T03:04:05Z","dur_ns":9}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if want := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC); !legacy.Start.Equal(want) {
		t.Fatalf("legacy start = %v, want %v", legacy.Start, want)
	}
}

// TestTraceNodeJSONRoundTrip guards against the embedded OpRecord's custom
// marshaller swallowing the Children field.
func TestTraceNodeJSONRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartCtx(nil, "test.root", "")
	_, child := tr.StartCtx(ctx, "test.child", "")
	child.Finish()
	root.Finish()

	tree := tr.Trace(root.TraceID())
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceTree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tree.ID || back.Spans != 2 || len(back.Roots) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Roots[0].Children) != 1 || back.Roots[0].Children[0].Op != "test.child" {
		t.Fatalf("children lost in round trip: %s", data)
	}
}

// TestTraceAssemblyOrphanPromotion: when the ring wraps past a trace's
// root, the surviving spans are promoted to roots instead of vanishing.
func TestTraceAssemblyOrphanPromotion(t *testing.T) {
	tr := NewTracer(2) // holds two records: the last two children
	ctx, root := tr.StartCtx(nil, "test.root", "")
	var children []*Span
	for i := 0; i < 3; i++ {
		_, c := tr.StartCtx(ctx, "test.child", "")
		children = append(children, c)
	}
	for _, c := range children {
		c.Finish()
	}
	root.Finish() // evicts the first child; the root record evicts the second

	tree := tr.Trace(root.TraceID())
	if tree == nil {
		t.Fatal("trace vanished entirely")
	}
	if tree.Spans != 2 {
		t.Fatalf("retained %d spans, want 2", tree.Spans)
	}
	// The retained child's parent (the root) survives alongside it, so one
	// root with one child; had the root been evicted too, the child would
	// be promoted. Exercise that case as well.
	if len(tree.Roots) != 1 || len(tree.Roots[0].Children) != 1 {
		t.Fatalf("tree = %+v", tree)
	}

	tr2 := NewTracer(1)
	ctx2, root2 := tr2.StartCtx(nil, "test.root", "")
	_, only := tr2.StartCtx(ctx2, "test.child", "")
	only.Finish()
	root2.Finish() // evicts the child... then the root is the only record
	_, late := tr2.StartCtx(ContextWithSpan(nil, root2), "test.late", "")
	late.Finish() // evicts the root: a parentless child remains

	tree2 := tr2.Trace(root2.TraceID())
	if tree2 == nil || len(tree2.Roots) != 1 || tree2.Roots[0].Op != "test.late" {
		t.Fatalf("orphan not promoted: %+v", tree2)
	}
	if tree2.Roots[0].Depth != 1 {
		t.Fatalf("promoted orphan lost its recorded depth: %+v", tree2.Roots[0])
	}
}

// TestTracerRoots covers the /debug/traces index: newest root first, one
// summary per trace, shallowest surviving span as the face.
func TestTracerRoots(t *testing.T) {
	tr := NewTracer(16)
	_, first := tr.StartCtx(nil, "test.first", "")
	first.Finish()
	ctx, second := tr.StartCtx(nil, "test.second", "")
	_, child := tr.StartCtx(ctx, "test.child", "")
	child.Finish()
	second.Finish()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %+v, want 2", roots)
	}
	if roots[0].Op != "test.second" || roots[0].Spans != 2 {
		t.Errorf("newest root = %+v, want test.second with 2 spans", roots[0])
	}
	if roots[1].Op != "test.first" || roots[1].Spans != 1 {
		t.Errorf("older root = %+v, want test.first with 1 span", roots[1])
	}
}

// TestPerfettoGolden locks the trace-event encoding against a golden file:
// phase-X complete events, microsecond timestamps, greedy per-trace track
// assignment, span ids in args.
func TestPerfettoGolden(t *testing.T) {
	base := time.Unix(1000, 0).UTC()
	recs := []OpRecord{
		{Seq: 1, Trace: 0xa, Span: 1, Op: "trim.select", Detail: "s??",
			Start: base.Add(10 * time.Microsecond), Dur: 30 * time.Microsecond},
		{Seq: 2, Trace: 0xa, Span: 2, Parent: 3, Op: "trim.create",
			Start: base.Add(50 * time.Microsecond), Dur: 20 * time.Microsecond, Err: "boom"},
		{Seq: 3, Trace: 0xa, Span: 3, Op: "dmi.create", Detail: "Bundle",
			Start: base, Dur: 100 * time.Microsecond},
		// A second trace gets its own disjoint track range.
		{Seq: 4, Trace: 0xb, Span: 4, Op: "core.view", Detail: "simultaneous m1",
			Start: base.Add(5 * time.Microsecond), Dur: 40 * time.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, recs); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/obs -run Perfetto -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto encoding drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Whatever the bytes, the output must remain loadable trace-event JSON.
	var f struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			Dur float64 `json:"dur"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != len(recs) {
		t.Fatalf("%d events, want %d", len(f.TraceEvents), len(recs))
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" || ev.TID == 0 {
			t.Errorf("malformed event %+v", ev)
		}
	}
}

// TestWriteTraceEventsTrackAssignment: overlapping spans of one trace get
// distinct tracks; sequential spans reuse the first.
func TestWriteTraceEventsTrackAssignment(t *testing.T) {
	base := time.Unix(2000, 0).UTC()
	recs := []OpRecord{
		{Seq: 1, Trace: 0xc, Span: 1, Op: "a", Start: base, Dur: 100 * time.Microsecond},
		{Seq: 2, Trace: 0xc, Span: 2, Op: "b", Start: base.Add(10 * time.Microsecond), Dur: 10 * time.Microsecond},
		{Seq: 3, Trace: 0xc, Span: 3, Op: "c", Start: base.Add(200 * time.Microsecond), Dur: 10 * time.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	tid := map[string]int{}
	for _, ev := range f.TraceEvents {
		tid[ev.Name] = ev.TID
	}
	if tid["a"] == tid["b"] {
		t.Errorf("overlapping spans share track %d:\n%s", tid["a"], buf.Bytes())
	}
	if tid["a"] != tid["c"] {
		t.Errorf("sequential span c got track %d, want a's track %d", tid["c"], tid["a"])
	}
}

// TestWriteTextIncludesTraceIDs: the -trace text dump leads each line with
// the trace id so interleaved traces group visually.
func TestWriteTextIncludesTraceIDs(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.StartCtx(nil, "test.op", "detail")
	sp.Finish()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, sp.TraceID().String()) || !strings.Contains(out, "test.op") {
		t.Fatalf("WriteText output missing trace id or op:\n%s", out)
	}
}
