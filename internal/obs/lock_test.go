package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTrackedMutexCounts: every acquisition lands in the wait histogram
// (uncontended ones as a zero), so the sample count equals the
// acquisition count.
func TestTrackedMutexCounts(t *testing.T) {
	m := NewTrackedMutex("test.lock.counts")
	for i := 0; i < 10; i++ {
		m.Lock()
		m.Unlock()
	}
	st, ok := LockProfile("test.lock.counts")
	if !ok {
		t.Fatal("lock not in the table")
	}
	if st.Write.Total != 10 || st.Write.WaitSamples != 10 {
		t.Fatalf("total=%d wait_samples=%d, want 10/10", st.Write.Total, st.Write.WaitSamples)
	}
	if st.Read != nil {
		t.Fatalf("plain mutex reports read stats: %+v", st.Read)
	}
	if st.Write.Contended != 0 {
		t.Fatalf("uncontended loop counted %d contended acquisitions", st.Write.Contended)
	}
}

// blockPack holds m, lets n goroutines pile up blocked on Lock for
// holdFor, then releases them and waits for the chain to drain. Every
// released locker records a contended wait of at least holdFor.
func blockPack(m *TrackedMutex, n int, holdFor time.Duration) {
	m.Lock()
	var started sync.WaitGroup
	var done sync.WaitGroup
	started.Add(n)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			started.Done()
			m.Lock()
			m.Unlock()
		}()
	}
	started.Wait()
	// The goroutines have announced themselves; give them time to reach
	// the blocking Lock before the release.
	time.Sleep(holdFor)
	m.Unlock()
	done.Wait()
}

// TestTrackedMutexContention: blocked Locks increment the contended
// counter and push the wait quantiles into real territory.
func TestTrackedMutexContention(t *testing.T) {
	m := NewTrackedMutex("test.lock.contention")
	blockPack(m, 20, 20*time.Millisecond)
	st, _ := LockProfile("test.lock.contention")
	if st.Write.Contended < 15 {
		t.Fatalf("contended=%d, want most of the 20 blocked lockers", st.Write.Contended)
	}
	if st.Write.WaitP95NS <= int64(time.Millisecond) {
		t.Fatalf("p95 wait %d, want > 1ms after 20ms blocks", st.Write.WaitP95NS)
	}
	if st.Write.HoldP99NS <= 0 {
		t.Fatalf("p99 hold %d, want > 0 after a 20ms hold", st.Write.HoldP99NS)
	}
}

// TestTrackedRWMutexRace hammers the lock from concurrent readers and
// writers; under -race this doubles as the data-race check for the
// tracked bookkeeping itself.
func TestTrackedRWMutexRace(t *testing.T) {
	m := NewTrackedRWMutex("test.lock.race")
	shared := 0
	var wg sync.WaitGroup
	const writers, readers, iters = 4, 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
	}
	sink := 0
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < iters; i++ {
				m.RLock()
				local += shared
				m.RUnlock()
			}
			m.Lock()
			sink += local
			m.Unlock()
		}()
	}
	wg.Wait()
	if shared != writers*iters {
		t.Fatalf("shared=%d, want %d (lost updates)", shared, writers*iters)
	}
	st, _ := LockProfile("test.lock.race")
	if st.Write.Total != writers*iters+readers {
		t.Fatalf("write total=%d, want %d", st.Write.Total, writers*iters+readers)
	}
	if st.Read == nil || st.Read.Total != readers*iters {
		t.Fatalf("read stats=%+v, want total %d", st.Read, readers*iters)
	}
	if st.Read.WaitSamples != st.Read.Total {
		t.Fatalf("read wait_samples=%d, want %d", st.Read.WaitSamples, st.Read.Total)
	}
}

// TestLockTableJSON: the table renders the /debug/contention document,
// sorted by name, aggregating same-named locks into one entry.
func TestLockTableJSON(t *testing.T) {
	tab := NewLockTable()
	m1 := NewTrackedMutex("test.table.b")
	tab.add("test.table.b", &m1.w, nil)
	rw := NewTrackedRWMutex("test.table.a")
	tab.add("test.table.a", &rw.w, &rw.r)
	// A duplicate registration shares the first entry instead of
	// clobbering it.
	m2 := NewTrackedMutex("test.table.b")
	tab.add("test.table.b", &m2.w, nil)

	m1.Lock()
	m1.Unlock()
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Locks []struct {
			Name  string `json:"name"`
			Write struct {
				Total int64 `json:"total"`
			} `json:"write"`
			Read *struct{} `json:"read"`
		} `json:"locks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("table JSON: %v\n%s", err, data)
	}
	if len(doc.Locks) != 2 || doc.Locks[0].Name != "test.table.a" || doc.Locks[1].Name != "test.table.b" {
		t.Fatalf("locks = %s", data)
	}
	if doc.Locks[0].Read == nil || doc.Locks[1].Read != nil {
		t.Fatalf("read presence wrong: %s", data)
	}
	if doc.Locks[1].Write.Total < 1 {
		t.Fatalf("write total not recorded: %s", data)
	}
}

// TestContentionCheck: healthy below the threshold, degraded with the
// offending lock named once a blocked acquisition pushes p95 wait past
// it.
func TestContentionCheck(t *testing.T) {
	tab := NewLockTable()
	m := NewTrackedMutex("test.check.hot")
	tab.add("test.check.hot", &m.w, nil)

	check := ContentionCheck(tab, time.Millisecond)
	if err := check(context.Background()); err != nil {
		t.Fatalf("idle table degraded: %v", err)
	}

	blockPack(m, 20, 20*time.Millisecond)

	err := check(context.Background())
	if err == nil || !strings.Contains(err.Error(), "test.check.hot") {
		t.Fatalf("check after 20ms block = %v, want the hot lock named", err)
	}
	// A generous threshold stays healthy on the same history.
	if err := ContentionCheck(tab, time.Minute)(context.Background()); err != nil {
		t.Fatalf("minute threshold degraded: %v", err)
	}
}
