package obs

// This file is the metric and health-check name registry: the single place
// where the /metrics and /healthz name spaces are declared. Every name that
// reaches a registration sink (C, H, HSize, Registry.Counter/Histogram,
// HealthRegistry.Register/Unregister) must be one of these constants, or —
// for per-op/per-scheme families — a Fmt* constant expanded with
// fmt.Sprintf. The metricnames analyzer (internal/analysis) enforces this;
// docs/OBSERVABILITY.md is generated-by-hand from this list and stays
// honest because of it.
//
// Names are dot-separated, lower-case, and lead with the owning layer
// (trim, mark, slim, core, slimpad). Duration histograms end in ".ns",
// size histograms name the quantity, counters name the event.

// TRIM store (internal/trim).
const (
	NameTrimCreateTotal  = "trim.create.total"
	NameTrimCreateNew    = "trim.create.new"
	NameTrimCreateErrors = "trim.create.errors"
	NameTrimCreateNS     = "trim.create.ns"

	NameTrimRemoveTotal = "trim.remove.total"
	NameTrimRemoveHit   = "trim.remove.hit"

	NameTrimSelectTotal = "trim.select.total"
	NameTrimSelectNS    = "trim.select.ns"
	NameTrimCountTotal  = "trim.count.total"
	NameTrimStatsTotal  = "trim.stats.total"

	NameTrimIndexSubject   = "trim.index.subject"
	NameTrimIndexPredicate = "trim.index.predicate"
	NameTrimIndexObject    = "trim.index.object"
	NameTrimIndexScan      = "trim.index.scan"

	NameTrimViewTotal = "trim.view.total"
	NameTrimViewNS    = "trim.view.ns"

	NameTrimBatchTotal   = "trim.batch.total"
	NameTrimBatchApplyNS = "trim.batch.apply.ns"
	NameTrimBatchOps     = "trim.batch.ops"

	NameTrimLoadTriples = "trim.load.triples"
	NameTrimLoadNS      = "trim.load.ns"

	NameTrimObserverFanout = "trim.observer.fanout"

	NameTrimPersistSaveTotal     = "trim.persist.save.total"
	NameTrimPersistSaveErrors    = "trim.persist.save.errors"
	NameTrimPersistLoadTotal     = "trim.persist.load.total"
	NameTrimPersistLoadCorrupt   = "trim.persist.load.corrupt"
	NameTrimPersistLoadRecovered = "trim.persist.load.recovered"
	// Directory fsyncs skipped because the filesystem refused them (the
	// atomic-write sequence treats them as best effort, but counts skips).
	NameTrimPersistDirsyncSkipped = "trim.persist.dirsync_skipped"
	// JSONL export/import (backup and portability interchange).
	NameTrimPersistExportTotal = "trim.persist.export.total"
	NameTrimPersistImportTotal = "trim.persist.import.total"
)

// TRIM write-ahead-log durability backend (internal/trim/wal.go over
// internal/wal): append/commit throughput, fsync cost, replay outcomes,
// and snapshot compaction (docs/ROBUSTNESS.md "Durability backends").
const (
	NameTrimWALAppendTotal  = "trim.wal.append.total"
	NameTrimWALAppendErrors = "trim.wal.append.errors"
	NameTrimWALAppendBytes  = "trim.wal.append.bytes"
	NameTrimWALAppendNS     = "trim.wal.append.ns"

	NameTrimWALSyncTotal = "trim.wal.sync.total"
	NameTrimWALSyncNS    = "trim.wal.sync.ns"

	NameTrimWALCommitOps = "trim.wal.commit.ops"

	NameTrimWALReplayTotal   = "trim.wal.replay.total"
	NameTrimWALReplayRecords = "trim.wal.replay.records"
	NameTrimWALReplayTorn    = "trim.wal.replay.torn"
	NameTrimWALReplayNS      = "trim.wal.replay.ns"

	NameTrimWALCompactTotal  = "trim.wal.compact.total"
	NameTrimWALCompactErrors = "trim.wal.compact.errors"
	NameTrimWALCompactNS     = "trim.wal.compact.ns"
)

// Mark Management (internal/mark). The per-scheme families are bounded by
// the module registry: one dispatch counter per scheme, one latency/error
// pair per (op, scheme).
const (
	FmtMarkDispatch = "mark.dispatch.%s"  // %s = scheme
	FmtMarkOpNS     = "mark.%s.%s.ns"     // op, scheme
	FmtMarkOpErrors = "mark.%s.%s.errors" // op, scheme

	NameMarkMarksAdded          = "mark.marks.added"
	NameMarkMarksRemoved        = "mark.marks.removed"
	NameMarkModulesRegistered   = "mark.modules.registered"
	NameMarkResolversRegistered = "mark.resolvers.registered"

	NameMarkResolveRetries    = "mark.resolve.retries"
	NameMarkResolveFailed     = "mark.resolve.failed"
	NameMarkResolveCached     = "mark.resolve.cached"
	NameMarkQuarantineAdded   = "mark.quarantine.added"
	NameMarkQuarantineCleared = "mark.quarantine.cleared"
	NameMarkDoctorRuns        = "mark.doctor.runs"

	NameMarkPersistSaveTotal = "mark.persist.save.total"
	NameMarkPersistLoadTotal = "mark.persist.load.total"
)

// SLIM DMI (internal/slim). The per-op families are bounded by the DMI
// verb set ("create", "get", "set", "delete", ...).
const (
	NameSlimTriplesTouched = "slim.dmi.triples.touched"
	NameSlimTriplesPerOp   = "slim.dmi.triples_per_op"

	FmtSlimDmiNS     = "slim.dmi.%s.ns"     // %s = op
	FmtSlimDmiTotal  = "slim.dmi.%s.total"  // op
	FmtSlimDmiErrors = "slim.dmi.%s.errors" // op
)

// Core views (internal/core). The per-style family is bounded by the
// ViewStyle enum.
const (
	NameCoreViewNS       = "core.view.ns"
	FmtCoreViewTotal     = "core.view.%s.total" // %s = view style
	NameCoreViewErrors   = "core.view.errors"
	NameCoreViewDegraded = "core.view.degraded"
)

// slimpad (internal/slimpad).
const (
	NameSlimpadRefreshDegraded = "slimpad.refresh.degraded"
)

// Tracing (internal/obs). Sampled/dropped count root-span sampling
// decisions; see Tracer.SetSampleRate.
const (
	NameTraceSampled = "trace.sampled"
	NameTraceDropped = "trace.dropped"
)

// Mark resolve attempt distribution (satellite of the trace-tree work:
// the per-attempt child spans and this histogram are recorded together).
const (
	NameMarkResolveAttempts = "mark.resolve.attempts"
)

// Flight recorder gauges (internal/obs/flight.go): last-sample runtime
// snapshot republished to /metrics so Prometheus can correlate trace
// timings with GC and scheduler pressure.
const (
	NameFlightGoroutines  = "flight.goroutines"
	NameFlightHeapAlloc   = "flight.heap.alloc.bytes"
	NameFlightHeapInuse   = "flight.heap.inuse.bytes"
	NameFlightGCCount     = "flight.gc.count"
	NameFlightGCPauseLast = "flight.gc.pause.last.ns"
	NameFlightGCNext      = "flight.gc.next.bytes"
)

// Workload analytics (internal/obs/window.go, topk.go): the windowed
// sampler's self-accounting and the heavy-hitter sketch totals. Nonzero
// obs.top.evicted means the sketch is estimating, not counting exactly.
const (
	NameObsWindowSamples = "obs.window.samples"
	NameObsTopRecorded   = "obs.top.recorded"
	NameObsTopEvicted    = "obs.top.evicted"
)

// Instrumented locks (internal/obs/lock.go): per-lock wait/hold latency
// histograms and acquisition/contention counters. The first %s is the lock
// name (a Lock* constant below), the second the mode: "w" for exclusive
// acquisitions, "r" for read acquisitions. Wait histograms record every
// acquisition (0 when the lock was free), so sample counts double as
// acquisition counts; contended counts only acquisitions that blocked.
const (
	FmtLockWaitNS    = "lock.%s.%s.wait.ns"
	FmtLockHoldNS    = "lock.%s.%s.hold.ns"
	FmtLockTotal     = "lock.%s.%s.total"
	FmtLockContended = "lock.%s.%s.contended"
)

// Tracked-lock names (obs.NewTrackedMutex/NewTrackedRWMutex). Lock names
// are dot-separated like metric names and lead with the owning layer.
const (
	LockTrimStore   = "trim.store"
	LockMarkManager = "mark.manager"
)

// Store space accounting (internal/trim/space.go): the deep space
// accountant's last-report gauges, republished so Prometheus can plot the
// bytes-per-triple trajectory across the term-dictionary work (ROADMAP
// item 1). Gauges are integers, so the duplication ratio is exported in
// percent (×100).
const (
	NameTrimSpaceTotal          = "trim.space.total"
	NameTrimSpaceBytesPerTriple = "trim.space.bytes_per_triple"
	NameTrimSpaceStringBytes    = "trim.space.string.bytes"
	NameTrimSpaceUniqueBytes    = "trim.space.string.unique.bytes"
	NameTrimSpaceDupPct         = "trim.space.duplication.pct"
	NameTrimSpaceInterningSaved = "trim.space.interning.saved.bytes"
)

// Alloc-per-op probe harness (internal/trim/probe.go, `trimq space
// -probe`).
const (
	NameTrimProbeTotal = "trim.probe.total"
	NameTrimProbeNS    = "trim.probe.ns"
)

// Process space accounting (internal/obs/space.go over
// runtime/metrics/memory classes): heap occupancy split, GC cycle count,
// and the allocation-bytes rate between reads. Served at /debug/space and
// republished as the space_* gauge family on /metrics.
const (
	NameSpaceHeapInuse    = "space.heap.inuse.bytes"
	NameSpaceHeapFree     = "space.heap.free.bytes"
	NameSpaceHeapReleased = "space.heap.released.bytes"
	NameSpaceStacks       = "space.stack.bytes"
	NameSpaceTotal        = "space.total.bytes"
	NameSpaceGCCycles     = "space.gc.cycles"
	NameSpaceAllocRate    = "space.alloc.bytes_per_sec"
)

// Space-source names (obs.RegisterSpaceSource): per-subsystem deep space
// reports rendered under "sources" at /debug/space.
const (
	SpaceSourceTrimStore = "trim.store"
)

// Runtime scheduler and GC telemetry (internal/obs/flight.go over
// runtime/metrics): per-interval deltas of the runtime's cumulative
// scheduling-latency and GC-pause distributions are replayed into these
// histograms, so /metrics and /debug/load see scheduler stalls and GC
// pressure alongside the store's own latencies. runtime.mutex.wait.ns is
// the runtime's total goroutine-blocked-on-sync time (a counter, so the
// window sampler turns it into a blocked-ns-per-second rate).
const (
	NameRuntimeSchedLatencyNS = "runtime.sched.latency.ns"
	NameRuntimeGCPauseNS      = "runtime.gc.pause.ns"
	NameRuntimeMutexWaitNS    = "runtime.mutex.wait.ns"
	NameRuntimeHeapObjects    = "runtime.heap.objects"
	NameRuntimeGomaxprocs     = "runtime.gomaxprocs"
)

// Health and readiness check names (HealthRegistry.Register).
const (
	HealthTrimStore   = "trim.store"
	HealthTrimPersist = "trim.persist"
	HealthTrimWAL     = "trim.wal"

	HealthMarkStore      = "mark.store"
	HealthMarkPersist    = "mark.persist"
	HealthMarkQuarantine = "mark.quarantine"

	HealthSlimpadStore      = "slimpad.store"
	HealthSlimpadPersist    = "slimpad.persist"
	HealthSlimpadQuarantine = "slimpad.quarantine"

	HealthObsFlight     = "obs.flight"
	HealthObsContention = "obs.contention"
	HealthObsSpace      = "obs.space"
)
