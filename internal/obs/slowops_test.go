package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSlowOpJournalThreshold(t *testing.T) {
	j := NewSlowOpJournal(8, 10*time.Millisecond)
	if got := j.Threshold(); got != 10*time.Millisecond {
		t.Fatalf("Threshold = %s, want 10ms", got)
	}
	if j.Slow(time.Millisecond) {
		t.Error("1ms should not be slow at a 10ms threshold")
	}
	if !j.Slow(10 * time.Millisecond) {
		t.Error("threshold is inclusive: 10ms should be slow")
	}
	start := time.Unix(100, 0)
	j.Observe("fast.op", "", start, time.Millisecond, nil)
	if got := j.Recent(); len(got) != 0 {
		t.Fatalf("fast op journaled: %+v", got)
	}
	j.Observe("slow.op", "detail", start, 25*time.Millisecond, nil)
	got := j.Recent()
	if len(got) != 1 || got[0].Op != "slow.op" || got[0].DurNS != int64(25*time.Millisecond) {
		t.Fatalf("Recent = %+v", got)
	}
	if got[0].Seq != 1 {
		t.Fatalf("first seq = %d, want 1", got[0].Seq)
	}

	// Zero threshold disables recording entirely.
	j.SetThreshold(0)
	if j.Slow(time.Hour) {
		t.Error("zero threshold must disable Slow")
	}
	j.Observe("slow.op", "", start, time.Hour, nil)
	if got := j.Recent(); len(got) != 1 {
		t.Fatalf("disabled journal recorded: %+v", got)
	}
}

func TestSlowOpJournalRingWrap(t *testing.T) {
	j := NewSlowOpJournal(3, time.Millisecond)
	start := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		j.Observe("op", "", start, time.Duration(i+2)*time.Millisecond, nil)
	}
	got := j.Recent()
	if len(got) != 3 {
		t.Fatalf("ring of 3 holds %d", len(got))
	}
	// Oldest-first: seqs 3, 4, 5 survive.
	for i, wantSeq := range []uint64{3, 4, 5} {
		if got[i].Seq != wantSeq {
			t.Fatalf("Recent[%d].Seq = %d, want %d (%+v)", i, got[i].Seq, wantSeq, got)
		}
	}
	j.Reset()
	if got := j.Recent(); len(got) != 0 {
		t.Fatalf("Reset left %+v", got)
	}
	j.Observe("op", "", start, 5*time.Millisecond, nil)
	if got := j.Recent(); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("post-Reset seq restart: %+v", got)
	}
}

func TestSlowOpJournalNilSafe(t *testing.T) {
	var j *SlowOpJournal
	j.SetThreshold(time.Second)
	if j.Threshold() != 0 || j.Slow(time.Hour) {
		t.Error("nil journal must report zero threshold and never slow")
	}
	j.Observe("op", "", time.Now(), time.Hour, nil)
	if got := j.Recent(); got != nil {
		t.Errorf("nil journal Recent = %v", got)
	}
	j.Reset()
}

func TestSlowOpJournalJSON(t *testing.T) {
	j := NewSlowOpJournal(4, time.Millisecond)
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"ops": []`) && !strings.Contains(string(b), `"ops":[]`) {
		t.Fatalf("empty journal ops must be [], got %s", b)
	}
	j.Observe("trim.select", "op=select index=subject", time.Unix(100, 0), 5*time.Millisecond, errors.New("boom"))
	b, err = json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ThresholdNS int64    `json:"threshold_ns"`
		Ops         []SlowOp `json:"ops"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("journal JSON does not round-trip: %v\n%s", err, b)
	}
	if decoded.ThresholdNS != int64(time.Millisecond) {
		t.Errorf("threshold_ns = %d", decoded.ThresholdNS)
	}
	if len(decoded.Ops) != 1 || decoded.Ops[0].Op != "trim.select" || decoded.Ops[0].Err != "boom" {
		t.Errorf("ops = %+v", decoded.Ops)
	}

	var sb strings.Builder
	if err := j.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slow ops (1, threshold 1ms)", "#1 trim.select", "err=boom"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteText missing %q:\n%s", want, sb.String())
		}
	}
}
