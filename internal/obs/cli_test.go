package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIFlagsAndFinish(t *testing.T) {
	profile := filepath.Join(t.TempDir(), "run.prof")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Bind(fs)
	if err := fs.Parse([]string{"-metrics", "-trace", "-profile", profile}); err != nil {
		t.Fatal(err)
	}
	if !cli.Metrics || !cli.Trace || cli.Profile != profile {
		t.Fatalf("parsed CLI = %+v", cli)
	}
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	C("cli.test.counter").Inc()
	Trace("cli.test.op", "detail").Finish()

	var out strings.Builder
	if err := cli.Finish(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== obs metrics ==") || !strings.Contains(text, "cli.test.counter 1") {
		t.Fatalf("metrics section missing: %q", text)
	}
	if !strings.Contains(text, "== recent ops") || !strings.Contains(text, "cli.test.op") {
		t.Fatalf("trace section missing: %q", text)
	}
	if info, err := os.Stat(profile); err != nil || info.Size() == 0 {
		t.Fatalf("profile not written: %v", err)
	}
	// Finish again is a no-op for the profile and re-prints reports.
	if err := cli.Finish(&out); err != nil {
		t.Fatal(err)
	}
}

func TestCLIDefaultsOff(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Bind(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := cli.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("silent run produced output: %q", out.String())
	}
}
