package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// fakeClock hands the sampler a deterministic timeline so rate math is
// exact in tests.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestWindowRingWraparound: the ring keeps the newest capacity samples,
// oldest-first with non-decreasing timestamps.
func TestWindowRingWraparound(t *testing.T) {
	reg := NewRegistry()
	s := NewWindowSampler(reg, 4)
	clk := newFakeClock()
	s.now = clk.now
	for i := 0; i < 10; i++ {
		s.SampleNow()
		clk.advance(time.Second)
	}
	samples := s.recent()
	if len(samples) != 4 {
		t.Fatalf("retained %d samples, want 4", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeUnixNS < samples[i-1].TimeUnixNS {
			t.Fatalf("samples out of order: %+v", samples)
		}
	}
	// The newest retained sample is the 10th (t0 + 9s).
	wantNewest := time.Unix(1_700_000_000, 0).Add(9 * time.Second).UnixNano()
	if got := samples[len(samples)-1].TimeUnixNS; got != wantNewest {
		t.Fatalf("newest sample at %d, want %d", got, wantNewest)
	}
}

// TestWindowRateMath: counter rates are delta over actual covered span,
// and the two windows pick different baselines once the timeline is long
// enough to distinguish them.
func TestWindowRateMath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("w.test.ops")
	s := NewWindowSampler(reg, 16)
	clk := newFakeClock()
	s.now = clk.now

	s.SampleNow() // t0: counter 0
	clk.advance(2 * time.Minute)
	c.Add(100)
	s.SampleNow() // t0+120s: counter 100
	clk.advance(time.Minute)
	c.Add(30)
	s.SampleNow() // t0+180s: counter 130

	rep := s.Load()
	if rep.Samples != 3 {
		t.Fatalf("Samples = %d, want 3", rep.Samples)
	}

	// 1m window: baseline is the t0+120s sample → delta 30 over 60s.
	w1 := rep.Windows["1m"]
	if w1.SpanNS != int64(time.Minute) {
		t.Fatalf("1m span = %v, want 1m", time.Duration(w1.SpanNS))
	}
	cw := w1.Counters["w.test.ops"]
	if cw.Delta != 30 || cw.RatePerS != 0.5 {
		t.Fatalf("1m counter window = %+v, want delta 30 rate 0.5", cw)
	}

	// 5m window: the whole 180s timeline fits → delta 130 over 180s.
	w5 := rep.Windows["5m"]
	if w5.SpanNS != int64(3*time.Minute) {
		t.Fatalf("5m span = %v, want 3m", time.Duration(w5.SpanNS))
	}
	cw = w5.Counters["w.test.ops"]
	if cw.Delta != 130 {
		t.Fatalf("5m delta = %d, want 130", cw.Delta)
	}
	if want := 130.0 / 180.0; cw.RatePerS < want-1e-9 || cw.RatePerS > want+1e-9 {
		t.Fatalf("5m rate = %v, want %v", cw.RatePerS, want)
	}
}

// TestWindowDeltaPercentiles: window percentiles reflect only the
// observations inside the window, not the lifetime distribution.
func TestWindowDeltaPercentiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w.test.ns", LatencyBounds)
	s := NewWindowSampler(reg, 16)
	clk := newFakeClock()
	s.now = clk.now

	// Lifetime history: a thousand slow ops before the window opens.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(50 * time.Millisecond))
	}
	s.SampleNow()
	clk.advance(30 * time.Second)
	// Inside the window: three fast ops.
	for i := 0; i < 3; i++ {
		h.Observe(int64(20 * time.Microsecond))
	}
	s.SampleNow()

	rep := s.Load()
	hw := rep.Windows["1m"].Histograms["w.test.ns"]
	if hw.Count != 3 {
		t.Fatalf("window count = %d, want 3", hw.Count)
	}
	if want := 3.0 / 30.0; hw.RatePerS != want {
		t.Fatalf("window rate = %v, want %v", hw.RatePerS, want)
	}
	lifetimeP50 := h.Snapshot().Quantile(0.5)
	if hw.P50 >= lifetimeP50 {
		t.Fatalf("delta p50 %d not below lifetime p50 %d", hw.P50, lifetimeP50)
	}
	if hw.P99 >= int64(time.Millisecond) {
		t.Fatalf("delta p99 = %d, want fast-bucket estimate", hw.P99)
	}
}

// TestWindowSingleSample: one sample means no span — zero deltas and
// rates, but a well-formed report.
func TestWindowSingleSample(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("w.single").Add(7)
	s := NewWindowSampler(reg, 4)
	clk := newFakeClock()
	s.now = clk.now
	s.SampleNow()

	rep := s.Load()
	w1 := rep.Windows["1m"]
	if w1.SpanNS != 0 {
		t.Fatalf("span = %d, want 0", w1.SpanNS)
	}
	if cw := w1.Counters["w.single"]; cw.Delta != 0 || cw.RatePerS != 0 {
		t.Fatalf("counter window = %+v, want zeros", cw)
	}
}

// TestWindowLoadEmpty: a never-sampled sampler still returns a complete
// report shape.
func TestWindowLoadEmpty(t *testing.T) {
	s := NewWindowSampler(NewRegistry(), 4)
	rep := s.Load()
	if rep.Samples != 0 || rep.Running {
		t.Fatalf("empty report = %+v", rep)
	}
	for _, label := range []string{"1m", "5m"} {
		if _, ok := rep.Windows[label]; !ok {
			t.Fatalf("missing %s window in empty report", label)
		}
	}
}

// TestWindowStartStop: Start samples immediately and keeps sampling;
// Start/Stop are idempotent; samples survive Stop.
func TestWindowStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("w.live")
	s := NewWindowSampler(reg, 32)
	s.Start(10 * time.Millisecond)
	s.Start(10 * time.Millisecond) // idempotent
	if !s.Running() {
		t.Fatal("started sampler not running")
	}
	if s.Interval() != 10*time.Millisecond {
		t.Fatalf("Interval = %v", s.Interval())
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.recent()) < 3 && time.Now().Before(deadline) {
		c.Inc() // concurrent writes while the sampler snapshots
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(s.recent()); got < 3 {
		t.Fatalf("sampler produced %d samples in 2s, want >= 3", got)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Running() {
		t.Fatal("stopped sampler still running")
	}
	if len(s.recent()) == 0 {
		t.Fatal("Stop discarded the samples")
	}
	rep := s.Load()
	if rep.Running || rep.Samples == 0 {
		t.Fatalf("post-Stop report = %+v", rep)
	}
}

// TestWindowWritePrometheusRates: the `_rate` families are emitted per
// window with fixed-point values (the exposition grammar does not allow
// negative-exponent scientific notation) and delta-quantile summaries.
func TestWindowWritePrometheusRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("w.prom.ops")
	h := reg.Histogram("w.prom.ns", LatencyBounds)
	s := NewWindowSampler(reg, 8)
	clk := newFakeClock()
	s.now = clk.now

	s.SampleNow()
	clk.advance(time.Minute)
	c.Add(90)
	h.Observe(int64(time.Millisecond))
	s.SampleNow()

	var b strings.Builder
	if err := s.WritePrometheusRates(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE w_prom_ops_rate1m gauge",
		"w_prom_ops_rate1m 1.500000",
		"# TYPE w_prom_ops_rate5m gauge",
		"w_prom_ops_rate5m 1.500000",
		"# TYPE w_prom_ns_rate1m gauge",
		"# TYPE w_prom_ns_q1m summary",
		"w_prom_ns_q1m{quantile=\"0.5\"}",
		"w_prom_ns_q5m{quantile=\"0.99\"}",
		"w_prom_ns_q1m_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every sample line satisfies the Prometheus 0.0.4 exposition grammar,
	// and no value leaks scientific notation.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.]+$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestWindowNilSafe: a nil sampler answers every method harmlessly.
func TestWindowNilSafe(t *testing.T) {
	var s *WindowSampler
	s.Start(time.Second)
	s.Stop()
	s.SampleNow()
	if s.Running() || s.Interval() != 0 {
		t.Fatal("nil sampler misbehaved")
	}
	rep := s.Load()
	if rep.Samples != 0 {
		t.Fatalf("nil Load = %+v", rep)
	}
	if err := s.WritePrometheusRates(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
