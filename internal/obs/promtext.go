package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry: the
// wire format behind the diagnostics server's /metrics endpoint, so any
// standard scraper can collect the SLIM stack's live counters and latency
// histograms without a client library (the package stays stdlib-only).
//
// Dotted SLIM metric names map onto the Prometheus charset by replacing
// every character outside [a-zA-Z0-9_:] with '_': trim.select.ns becomes
// trim_select_ns. Counters export as counters; histograms export with
// cumulative le-labelled buckets (ending in le="+Inf"), _sum and _count
// series, plus a companion <name>_q summary carrying the p50/p95/p99
// bucket-upper-bound estimates.

// promName maps a dotted metric name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// errWriter latches the first write error so the render loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name: counters first, then gauges, then histograms.
// Histogram bucket series are cumulative and end with le="+Inf"; _count
// equals the +Inf bucket by construction. A companion summary <name>_q
// reports the p50/p95/p99 upper-bound estimates from
// HistogramSnapshot.Quantile.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counterNames, counters, gaugeNames, gauges, histNames, hists := r.snapshot()
	ew := &errWriter{w: w}
	for _, name := range counterNames {
		pn := promName(name)
		ew.printf("# HELP %s SLIM counter %s\n", pn, name)
		ew.printf("# TYPE %s counter\n", pn)
		ew.printf("%s %d\n", pn, counters[name])
	}
	for _, name := range gaugeNames {
		pn := promName(name)
		ew.printf("# HELP %s SLIM gauge %s\n", pn, name)
		ew.printf("# TYPE %s gauge\n", pn)
		ew.printf("%s %d\n", pn, gauges[name])
	}
	for _, name := range histNames {
		s := hists[name]
		pn := promName(name)
		ew.printf("# HELP %s SLIM histogram %s\n", pn, name)
		ew.printf("# TYPE %s histogram\n", pn)
		var cum int64
		for i, bound := range s.Bounds {
			cum += s.Buckets[i]
			ew.printf("%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		cum += s.Buckets[len(s.Buckets)-1]
		ew.printf("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		ew.printf("%s_sum %d\n", pn, s.Sum)
		// _count uses the cumulative bucket total, not the count atomic, so
		// the exposition is internally consistent even when a concurrent
		// Observe lands between the two loads.
		ew.printf("%s_count %d\n", pn, cum)

		ew.printf("# HELP %s_q SLIM histogram %s quantile upper-bound estimates\n", pn, name)
		ew.printf("# TYPE %s_q summary\n", pn)
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			ew.printf("%s_q{quantile=\"%g\"} %d\n", pn, q, s.Quantile(q))
		}
		ew.printf("%s_q_sum %d\n", pn, s.Sum)
		ew.printf("%s_q_count %d\n", pn, cum)
	}
	return ew.err
}
