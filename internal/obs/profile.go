package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends profiling and closes the file. It is the shared
// implementation behind every binary's -profile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: profile: %w", err)
	}
	var once bool
	return func() error {
		if once {
			return nil
		}
		once = true
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: profile: %w", err)
		}
		return nil
	}, nil
}
