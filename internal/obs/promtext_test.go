package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"trim.create.total":    "trim_create_total",
		"mark.resolve.xml.ns":  "mark_resolve_xml_ns",
		"already_fine":         "already_fine",
		"with:colon":           "with:colon",
		"9starts.with.digit":   "_9starts_with_digit",
		"dash-and space":       "dash_and_space",
		"slim.dmi.triples/op!": "slim_dmi_triples_op_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// metricNameRe is the Prometheus metric-name charset.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestWritePrometheusValid is the golden-structure test: every rendered
// line must be a HELP line, a TYPE line, or a sample whose metric name
// matches the Prometheus charset, and every histogram's bucket series
// must be cumulative (monotone) and end at le="+Inf" with _count equal.
func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("trim.create.total").Add(42)
	r.Counter("mark.dispatch.xml").Inc()
	h := r.Histogram("trim.select.ns", LatencyBounds)
	for _, v := range []int64{500, 800, 7_000, 40_000, 2_000_000_000} {
		h.Observe(v)
	}
	r.Histogram("empty.hist.ns", LatencyBounds) // zero observations

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+)$`)
	helpOrType := regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	var sawCounterSample, sawBucket bool
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !helpOrType.MatchString(line) {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		if !metricNameRe.MatchString(m[1]) {
			t.Fatalf("bad metric name %q in line %q", m[1], line)
		}
		if m[1] == "trim_create_total" {
			sawCounterSample = true
			if m[3] != "42" {
				t.Errorf("trim_create_total = %s, want 42", m[3])
			}
		}
		if strings.HasSuffix(m[1], "_bucket") {
			sawBucket = true
		}
	}
	if !sawCounterSample || !sawBucket {
		t.Fatalf("missing counter sample (%v) or bucket series (%v):\n%s", sawCounterSample, sawBucket, text)
	}

	for _, want := range []string{
		"# TYPE trim_create_total counter",
		"# TYPE trim_select_ns histogram",
		"# HELP trim_select_ns SLIM histogram trim.select.ns",
		"# TYPE trim_select_ns_q summary",
		`trim_select_ns_q{quantile="0.5"}`,
		`trim_select_ns_q{quantile="0.95"}`,
		`trim_select_ns_q{quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestWritePrometheusCumulativeBuckets checks the bucket math directly.
func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.h", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000, 50000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	bucketRe := regexp.MustCompile(`test_h_bucket\{le="([^"]+)"\} (\d+)`)
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) != 4 {
		t.Fatalf("want 4 bucket series (3 bounds + +Inf), got %d:\n%s", len(matches), text)
	}
	prev := int64(-1)
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("buckets not monotone at le=%s: %d < %d\n%s", m[1], n, prev, text)
		}
		prev = n
	}
	if matches[len(matches)-1][1] != "+Inf" {
		t.Fatalf("last bucket le=%q, want +Inf", matches[len(matches)-1][1])
	}
	if got := matches[len(matches)-1][2]; got != "5" {
		t.Fatalf("+Inf bucket = %s, want 5", got)
	}
	if !strings.Contains(text, "test_h_count 5") {
		t.Fatalf("missing test_h_count 5:\n%s", text)
	}
	if !strings.Contains(text, "test_h_sum 55555") {
		t.Fatalf("missing test_h_sum 55555:\n%s", text)
	}
	// Expected cumulative counts at the finite bounds: 1, 2, 3.
	for i, want := range []string{"1", "2", "3"} {
		if matches[i][2] != want {
			t.Fatalf("bucket %d (le=%s) = %s, want %s", i, matches[i][1], matches[i][2], want)
		}
	}
}

// TestWriteTextQuantilesAndBounds covers the fixed text export: count/sum,
// p50/p95/p99, and explicit cumulative bounds ending at le_inf.
func TestWriteTextQuantilesAndBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.text", []int64{10, 100})
	for _, v := range []int64{5, 6, 50, 5000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"count=4", "sum=5061",
		"p50=10", "p95=100", "p99=100",
		"le_10=2", "le_100=3", "le_inf=4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}
}
