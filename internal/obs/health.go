package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Pluggable health checks back the diagnostics server's /healthz and
// /readyz endpoints. Layers register named checks against the two default
// registries (TRIM registers store-loaded and persistence-writable probes,
// the Mark Manager a quarantine-threshold probe); the server runs them on
// every request, so an injected persistence fault or a burst of dangling
// references flips the endpoint without any polling loop.

// HealthCheck probes one aspect of the process; nil error means healthy.
// Checks run on every endpoint request and must be fast and side-effect
// free (beyond cheap probes like a create+remove in a data directory).
type HealthCheck func(ctx context.Context) error

// HealthResult is one check's outcome.
type HealthResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Err is the failure text, empty when OK.
	Err string `json:"err,omitempty"`
	// DurNS is how long the check took, in nanoseconds.
	DurNS int64 `json:"dur_ns"`
}

// HealthRegistry holds named health checks. Registering a name again
// replaces the previous check, so re-run commands (and tests) converge on
// the latest store. All methods are safe for concurrent use.
type HealthRegistry struct {
	mu     sync.RWMutex
	checks map[string]HealthCheck
}

// NewHealthRegistry returns an empty registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{checks: make(map[string]HealthCheck)}
}

// DefaultHealth backs /healthz: liveness — "is the process able to do its
// job right now" (persistence writable, quarantine below threshold).
var DefaultHealth = NewHealthRegistry()

// DefaultReady backs /readyz: readiness — "has the process finished
// loading what it serves" (TRIM store loaded).
var DefaultReady = NewHealthRegistry()

// Register adds (or replaces) a named check.
func (h *HealthRegistry) Register(name string, check HealthCheck) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = check
}

// Unregister removes a named check.
func (h *HealthRegistry) Unregister(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.checks, name)
}

// Names lists the registered check names, sorted.
func (h *HealthRegistry) Names() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.checks))
	for name := range h.checks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes every check in name order and returns the results. An
// empty registry returns an empty (healthy) result set.
func (h *HealthRegistry) Run(ctx context.Context) []HealthResult {
	h.mu.RLock()
	names := make([]string, 0, len(h.checks))
	checks := make(map[string]HealthCheck, len(h.checks))
	for name, c := range h.checks {
		names = append(names, name)
		checks[name] = c
	}
	h.mu.RUnlock()
	sort.Strings(names)

	out := make([]HealthResult, 0, len(names))
	for _, name := range names {
		start := time.Now()
		err := checks[name](ctx)
		res := HealthResult{Name: name, OK: err == nil, DurNS: int64(time.Since(start))}
		if err != nil {
			res.Err = err.Error()
		}
		out = append(out, res)
	}
	return out
}

// Healthy reports whether every result is OK.
func Healthy(results []HealthResult) bool {
	for _, r := range results {
		if !r.OK {
			return false
		}
	}
	return true
}
