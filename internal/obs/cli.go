package obs

import (
	"flag"
	"io"
)

// CLI bundles the standard observability flags the SLIM binaries share:
//
//	-metrics        print the Default registry (text form) after the run
//	-trace          dump the DefaultTracer ring buffer after the run
//	-profile FILE   write a CPU profile of the run to FILE
//
// Usage: Bind onto the command's FlagSet, Start after parsing, and Finish
// once the command has run (Finish must run even when the command errors,
// so the profile file is complete).
type CLI struct {
	Metrics bool
	Trace   bool
	Profile string

	stopProfile func() error
}

// Bind registers the three flags on the flag set.
func (c *CLI) Bind(fs *flag.FlagSet) {
	fs.BoolVar(&c.Metrics, "metrics", false, "print the metrics registry after the run")
	fs.BoolVar(&c.Trace, "trace", false, "dump the recent-ops trace ring after the run")
	fs.StringVar(&c.Profile, "profile", "", "write a CPU profile of the run to `file`")
}

// Start begins CPU profiling when -profile was given.
func (c *CLI) Start() error {
	if c.Profile == "" {
		return nil
	}
	stop, err := StartCPUProfile(c.Profile)
	if err != nil {
		return err
	}
	c.stopProfile = stop
	return nil
}

// Finish stops profiling and writes the requested reports to out. It
// returns the first error encountered but always attempts every step.
func (c *CLI) Finish(out io.Writer) error {
	var first error
	if c.stopProfile != nil {
		if err := c.stopProfile(); err != nil {
			first = err
		}
		c.stopProfile = nil
	}
	if c.Metrics {
		if err := Default.WriteText(out); err != nil && first == nil {
			first = err
		}
	}
	if c.Trace {
		if err := DefaultTracer.WriteText(out); err != nil && first == nil {
			first = err
		}
	}
	return first
}
