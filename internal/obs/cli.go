package obs

import (
	"flag"
	"fmt"
	"io"
	"time"
)

// CLI bundles the standard observability flags the SLIM binaries share:
//
//	-metrics            print the Default registry (text form) after the run
//	-trace              dump the DefaultTracer ring buffer after the run
//	-profile FILE       write a CPU profile of the run to FILE
//	-serve ADDR         serve live diagnostics (/metrics, /healthz, /debug/*)
//	-slowops DUR        set the slow-op journal latency threshold
//	-flight DUR         runtime flight-recorder sampling interval under -serve
//	-load DUR           windowed metrics sampling interval under -serve
//	-contention DUR     obs.contention health threshold (p95 lock wait) under -serve
//	-mem-budget BYTES   obs.space health threshold (in-use heap) under -serve
//	-trace-sample RATE  probabilistic trace sampling rate (errors always kept)
//
// Usage: Bind onto the command's FlagSet, Start after parsing, and Finish
// once the command has run (Finish must run even when the command errors,
// so the profile file is complete). A -serve server outlives Finish; the
// binaries' main functions keep the process alive for scraping via
// ActiveServer + AwaitInterrupt, and tests close it through ActiveServer.
type CLI struct {
	Metrics     bool
	Trace       bool
	Profile     string
	Serve       string
	SlowOps     time.Duration
	Flight      time.Duration
	Load        time.Duration
	TraceSample float64
	Contention  time.Duration
	MemBudget   int64

	stopProfile func() error
	server      *DiagServer
}

// Bind registers the observability flags on the flag set.
func (c *CLI) Bind(fs *flag.FlagSet) {
	fs.BoolVar(&c.Metrics, "metrics", false, "print the metrics registry after the run")
	fs.BoolVar(&c.Trace, "trace", false, "dump the recent-ops trace ring after the run")
	fs.StringVar(&c.Profile, "profile", "", "write a CPU profile of the run to `file`")
	fs.StringVar(&c.Serve, "serve", "", "serve live diagnostics on `addr` (e.g. :9090); the process stays up after the command until interrupted")
	fs.DurationVar(&c.SlowOps, "slowops", 0, "journal instrumented ops slower than `dur` (0 keeps the current threshold)")
	fs.DurationVar(&c.Flight, "flight", time.Second, "runtime flight-recorder sampling `interval` (with -serve)")
	fs.DurationVar(&c.Load, "load", time.Second, "windowed metrics sampling `interval` for /debug/load (with -serve)")
	fs.Float64Var(&c.TraceSample, "trace-sample", 1, "record this fraction of trace roots (0..1; error spans are always kept)")
	fs.DurationVar(&c.Contention, "contention", DefaultContentionThreshold, "degrade /healthz when any tracked lock's p95 wait exceeds `dur` (with -serve)")
	fs.Int64Var(&c.MemBudget, "mem-budget", 0, "degrade /healthz when the in-use heap exceeds `bytes` (0 disables; with -serve)")
}

// Start begins CPU profiling when -profile was given, applies the -slowops
// threshold and -trace-sample rate, and — when -serve was given — starts
// the diagnostics server, the runtime flight recorder, and the flight,
// contention, and space health probes (-mem-budget arms the space probe;
// without it obs.space always passes).
func (c *CLI) Start() error {
	if c.SlowOps > 0 {
		DefaultSlowOps.SetThreshold(c.SlowOps)
	}
	if c.TraceSample != 1 {
		DefaultTracer.SetSampleRate(c.TraceSample)
	}
	if c.Serve != "" {
		s, err := Serve(c.Serve, ServeConfig{})
		if err != nil {
			return err
		}
		c.server = s
		if c.Flight > 0 {
			DefaultFlight.Start(c.Flight)
			DefaultHealth.Register(HealthObsFlight, FlightCheck(DefaultFlight))
		}
		DefaultHealth.Register(HealthObsContention, ContentionCheck(DefaultLocks, c.Contention))
		if c.MemBudget > 0 {
			SetMemBudget(c.MemBudget)
		}
		DefaultHealth.Register(HealthObsSpace, SpaceCheck())
		if c.Load > 0 {
			DefaultWindow.Start(c.Load)
		}
	}
	if c.Profile == "" {
		return nil
	}
	stop, err := StartCPUProfile(c.Profile)
	if err != nil {
		return err
	}
	c.stopProfile = stop
	return nil
}

// Server returns the diagnostics server started by -serve, or nil.
func (c *CLI) Server() *DiagServer { return c.server }

// Finish stops profiling and writes the requested reports to out. It
// returns the first error encountered but always attempts every step.
// The -serve server is left running; callers stop it via its Close (or
// the binaries' wait-for-interrupt path).
func (c *CLI) Finish(out io.Writer) error {
	var first error
	if c.stopProfile != nil {
		if err := c.stopProfile(); err != nil {
			first = err
		}
		c.stopProfile = nil
	}
	if c.Metrics {
		if err := Default.WriteText(out); err != nil && first == nil {
			first = err
		}
	}
	if c.Trace {
		if err := DefaultTracer.WriteText(out); err != nil && first == nil {
			first = err
		}
	}
	if c.server != nil {
		if _, err := fmt.Fprintf(out, "diagnostics: %s\n", c.server.URL()); err != nil && first == nil {
			first = err
		}
	}
	return first
}
