package obs

import (
	"encoding/json"
	"sort"
	"sync"
)

// Heavy-hitter profiling: a space-saving top-K sketch over query *shapes*
// (op kind, bound-position mask, index choice, predicate or mark scheme).
// Cumulative counters say how much work the store did; the sketch says
// which queries caused it — the "which tenant/query is eating this store"
// answer a served SLIM needs. TRIM's select/view/path entry points and the
// Mark Manager's resilient resolve feed the process-wide DefaultTopQueries
// through RecordQueryShape; /debug/top, `trimq top`, and `markctl top`
// render it.
//
// The sketch is Metwally et al.'s space-saving algorithm: at most K
// distinct keys are tracked. A hit increments its counter; a miss on a
// full sketch evicts the current minimum and inherits its count as the new
// key's error bound. Counts are exact while distinct keys <= K, and always
// within ErrBound of the true count — enough to rank heavy hitters without
// per-key memory.

// TopEntry is one tracked key with its estimated count. Count
// overestimates the true count by at most ErrBound (exactly zero while the
// sketch never evicted).
type TopEntry struct {
	Key string `json:"key"`
	// Count is the estimated occurrence count (true count <= Count).
	Count int64 `json:"count"`
	// ErrBound is the maximum overestimate inherited from evictions.
	ErrBound int64 `json:"err_bound"`
}

// TopK is a space-saving heavy-hitter sketch over string keys. All methods
// are safe for concurrent use and nil-safe.
type TopK struct {
	mu       sync.Mutex
	k        int
	entries  map[string]*TopEntry // guarded by mu
	recorded int64                // guarded by mu
	evicted  int64                // guarded by mu
}

// NewTopK returns an empty sketch tracking at most k keys (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, entries: make(map[string]*TopEntry, k)}
}

// DefaultTopQueries is the process-wide query-shape sketch every
// instrumented query path records into. 128 slots comfortably exceed the
// bounded shape space (op kinds x index choices x predicates in use), so
// in practice counts stay exact.
var DefaultTopQueries = NewTopK(128)

// Sketch self-accounting: how many shapes were recorded and how many
// evictions the space-saving bound forced (nonzero evictions mean counts
// are estimates, not exact).
var (
	mTopRecorded = C(NameObsTopRecorded)
	mTopEvicted  = C(NameObsTopEvicted)
)

// Record counts one occurrence of key.
func (t *TopK) Record(key string) { t.RecordN(key, 1) }

// RecordN counts n occurrences of key (n <= 0 is a no-op).
func (t *TopK) RecordN(key string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	mTopRecorded.Add(n)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recorded += n
	if e, ok := t.entries[key]; ok {
		e.Count += n
		return
	}
	if len(t.entries) < t.k {
		t.entries[key] = &TopEntry{Key: key, Count: n}
		return
	}
	// Space-saving eviction: replace the minimum-count key, inheriting its
	// count as the newcomer's error bound. Ties break on the smaller key so
	// the sketch is deterministic under a deterministic workload.
	var min *TopEntry
	for _, e := range t.entries {
		if min == nil || e.Count < min.Count || (e.Count == min.Count && e.Key < min.Key) {
			min = e
		}
	}
	t.evicted++
	mTopEvicted.Inc()
	delete(t.entries, min.Key)
	t.entries[key] = &TopEntry{Key: key, Count: min.Count + n, ErrBound: min.Count}
}

// Top returns the n highest-count entries, count-descending with key
// ascending as the deterministic tie-break. n <= 0 returns every tracked
// entry.
func (t *TopK) Top(n int) []TopEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of distinct keys currently tracked.
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Recorded returns the total occurrences recorded (across all keys,
// including those since evicted).
func (t *TopK) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// Evicted returns how many evictions the sketch performed; zero means
// every Count is exact.
func (t *TopK) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Reset discards all tracked keys and totals.
func (t *TopK) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = make(map[string]*TopEntry, t.k)
	t.recorded = 0
	t.evicted = 0
}

// topKJSON is the exported JSON shape of the sketch.
type topKJSON struct {
	Capacity int        `json:"capacity"`
	Recorded int64      `json:"recorded"`
	Evicted  int64      `json:"evicted"`
	Entries  []TopEntry `json:"entries"`
}

// MarshalJSON renders the sketch for /debug/top: capacity, totals, and
// every tracked entry count-descending. Entries is always an array, never
// null.
func (t *TopK) MarshalJSON() ([]byte, error) {
	entries := t.Top(0)
	if entries == nil {
		entries = []TopEntry{}
	}
	return json.Marshal(topKJSON{
		Capacity: t.k,
		Recorded: t.Recorded(),
		Evicted:  t.Evicted(),
		Entries:  entries,
	})
}

// RecordQueryShape records one occurrence of a query shape in the
// process-wide DefaultTopQueries sketch: the single entry point the
// instrumented layers (TRIM queries, mark resolution) call.
func RecordQueryShape(shape string) {
	DefaultTopQueries.Record(shape)
}
