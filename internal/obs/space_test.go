package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReadSpaceSnapshot(t *testing.T) {
	s := ReadSpace()
	if s.HeapInuseBytes == 0 || s.TotalBytes == 0 {
		t.Fatalf("heap/total bytes zero: %+v", s)
	}
	if s.TotalBytes < s.HeapInuseBytes {
		t.Fatalf("total %d < heap in use %d", s.TotalBytes, s.HeapInuseBytes)
	}
	if s.TimeUnixNS == 0 {
		t.Fatal("missing timestamp")
	}
	// A second read yields an allocation rate (allocating between reads to
	// guarantee a delta).
	_ = make([]byte, 1<<20)
	if s2 := ReadSpace(); s2.AllocRateBytesPerSec < 0 {
		t.Fatalf("negative alloc rate: %+v", s2)
	}
	if G(NameSpaceHeapInuse).Value() == 0 || G(NameSpaceTotal).Value() == 0 {
		t.Fatal("space gauges not republished")
	}
}

func TestSpaceCheckBudget(t *testing.T) {
	check := SpaceCheck()
	prev := SetMemBudget(0)
	defer SetMemBudget(prev)
	if err := check(context.Background()); err != nil {
		t.Fatalf("no budget: check failed: %v", err)
	}
	SetMemBudget(1) // any live process exceeds one byte of heap
	if err := check(context.Background()); err == nil {
		t.Fatal("1-byte budget: check passed")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	SetMemBudget(1 << 62)
	if err := check(context.Background()); err != nil {
		t.Fatalf("huge budget: check failed: %v", err)
	}
	if got := SetMemBudget(-5); got != 1<<62 {
		t.Fatalf("SetMemBudget returned %d, want previous 1<<62", got)
	}
	if MemBudget() != 0 {
		t.Fatalf("negative budget not clamped to 0: %d", MemBudget())
	}
}

func TestSpaceSourcesRegistry(t *testing.T) {
	ss := NewSpaceSources()
	ss.Register("a", func() any { return 1 })
	ss.Register("b", func() any { return map[string]int{"x": 2} })
	rep := ss.Report()
	if len(rep) != 2 || rep["a"] != 1 {
		t.Fatalf("Report = %+v", rep)
	}
	ss.Unregister("a")
	if rep := ss.Report(); len(rep) != 1 {
		t.Fatalf("after Unregister: %+v", rep)
	}
	// Replacing re-registers under the same name.
	ss.Register("b", func() any { return 3 })
	if rep := ss.Report(); rep["b"] != 3 {
		t.Fatalf("replace: %+v", rep)
	}
}

// TestDebugSpaceEndpoint drives /debug/space through the mux: the payload
// carries the runtime snapshot and every registered source.
func TestDebugSpaceEndpoint(t *testing.T) {
	ss := NewSpaceSources()
	ss.Register("test.store", func() any {
		return map[string]any{"triples": 42, "duplication_ratio": 2.5}
	})
	srv := httptest.NewServer(NewDiagMux(ServeConfig{Space: ss}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/space")
	if err != nil {
		t.Fatalf("GET /debug/space: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Runtime SpaceInfo                  `json:"runtime"`
		Sources map[string]json.RawMessage `json:"sources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Runtime.HeapInuseBytes == 0 {
		t.Fatalf("runtime snapshot empty: %+v", body.Runtime)
	}
	var src struct {
		Triples          int     `json:"triples"`
		DuplicationRatio float64 `json:"duplication_ratio"`
	}
	if err := json.Unmarshal(body.Sources["test.store"], &src); err != nil {
		t.Fatalf("source report: %v", err)
	}
	if src.Triples != 42 || src.DuplicationRatio != 2.5 {
		t.Fatalf("source report missing: %s", body.Sources["test.store"])
	}
}

// TestFlightSampleAllocRate pins the flight fold-in: consecutive samples
// carry a non-negative allocation rate and the released-heap figure.
func TestFlightSampleAllocRate(t *testing.T) {
	f := NewFlightRecorder(4)
	f.observe()
	_ = make([]byte, 1<<20)
	f.observe()
	samples := f.Recent()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].AllocBytesPerSec != 0 {
		t.Fatalf("first sample has an alloc rate: %+v", samples[0])
	}
	if samples[1].AllocBytesPerSec < 0 {
		t.Fatalf("negative alloc rate: %+v", samples[1])
	}
}
