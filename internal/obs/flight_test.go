package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestFlightRingWraparound: the ring keeps the newest capacity samples,
// oldest-first, with monotonically non-decreasing timestamps.
func TestFlightRingWraparound(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 7; i++ {
		f.observe()
	}
	samples := f.Recent()
	if len(samples) != 3 {
		t.Fatalf("retained %d samples, want 3", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeUnixNS < samples[i-1].TimeUnixNS {
			t.Fatalf("samples out of order: %v", samples)
		}
	}
	for i, s := range samples {
		if s.Goroutines <= 0 || s.HeapAllocBytes == 0 {
			t.Fatalf("sample %d looks empty: %+v", i, s)
		}
	}
}

// TestFlightStartStop: Start samples immediately and keeps sampling; both
// Start and Stop are idempotent; samples survive Stop.
func TestFlightStartStop(t *testing.T) {
	f := NewFlightRecorder(16)
	if f.Running() {
		t.Fatal("fresh recorder claims to be running")
	}
	f.Start(10 * time.Millisecond)
	f.Start(10 * time.Millisecond) // idempotent
	if !f.Running() {
		t.Fatal("started recorder not running")
	}
	if len(f.Recent()) == 0 {
		t.Fatal("Start took no immediate sample")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(f.Recent()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(f.Recent()); got < 2 {
		t.Fatalf("sampler produced %d samples in 2s, want ≥ 2", got)
	}
	f.Stop()
	f.Stop() // idempotent
	if f.Running() {
		t.Fatal("stopped recorder still running")
	}
	if len(f.Recent()) == 0 {
		t.Fatal("Stop discarded the samples")
	}

	var m struct {
		Running    bool           `json:"running"`
		IntervalNS int64          `json:"interval_ns"`
		Samples    []FlightSample `json:"samples"`
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Running || m.IntervalNS != int64(10*time.Millisecond) || len(m.Samples) == 0 {
		t.Fatalf("marshalled state = %+v", m)
	}
}

// TestFlightGauges: each observation republishes the flight.* gauges.
func TestFlightGauges(t *testing.T) {
	f := NewFlightRecorder(4)
	f.observe()
	if got := G(NameFlightGoroutines).Value(); got <= 0 {
		t.Errorf("%s gauge = %d, want > 0", NameFlightGoroutines, got)
	}
	if got := G(NameFlightHeapAlloc).Value(); got <= 0 {
		t.Errorf("%s gauge = %d, want > 0", NameFlightHeapAlloc, got)
	}
}

// TestFlightCheck: the health probe fails when stopped, passes while
// sampling, and fails when the sampler wedges (stale last sample).
func TestFlightCheck(t *testing.T) {
	f := NewFlightRecorder(4)
	check := FlightCheck(f)
	if err := check(context.Background()); err == nil {
		t.Fatal("check passed on a stopped recorder")
	}
	f.Start(10 * time.Millisecond)
	if err := check(context.Background()); err != nil {
		t.Fatalf("check failed on a running recorder: %v", err)
	}
	f.Stop()

	// A wedged sampler: running flag set but the last sample is ancient.
	wedged := NewFlightRecorder(4)
	wedged.running.Store(true)
	wedged.intervalNS.Store(int64(10 * time.Millisecond))
	wedged.lastNS.Store(time.Now().Add(-time.Minute).UnixNano())
	if err := FlightCheck(wedged)(context.Background()); err == nil {
		t.Fatal("check passed on a wedged recorder")
	}
}

// TestFlightNilSafe: a nil recorder answers every method harmlessly.
func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Start(time.Second)
	f.Stop()
	if f.Running() || f.Interval() != 0 || f.Recent() != nil {
		t.Fatal("nil recorder misbehaved")
	}
}
