package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Windowed workload metrics: every counter and histogram in the registry
// is cumulative-since-start, which answers "how much work has this process
// ever done" but not "what is it doing right now". The WindowSampler
// closes that gap: a ticker-driven ring of full registry snapshots, from
// which 1m/5m event *rates* and *delta* latency percentiles (percentiles
// of only the observations inside the window, not lifetime) are computed
// on demand. /debug/load serves the report as JSON, and /metrics grows
// companion `_rate1m`/`_rate5m` gauge families plus `_q1m`/`_q5m`
// delta-quantile summaries next to every cumulative series.

// Window spans reported by Load and the /metrics rate families.
const (
	WindowShort = time.Minute
	WindowLong  = 5 * time.Minute
)

// WindowSample is one full registry snapshot at a point in time.
type WindowSample struct {
	TimeUnixNS int64
	Counters   map[string]int64
	Hists      map[string]HistogramSnapshot
}

// WindowSampler snapshots a registry on a fixed interval into a ring
// buffer and computes windowed deltas between the newest sample and the
// oldest one inside each window. Start/Stop are idempotent; all methods
// are safe for concurrent use and nil-safe.
type WindowSampler struct {
	reg *Registry

	mu   sync.Mutex
	ring []WindowSample // guarded by mu
	seq  uint64         // guarded by mu

	running    atomic.Bool
	intervalNS atomic.Int64
	stop       chan struct{}
	done       chan struct{}

	// now is the clock; tests inject a fake to make rate math exact.
	now func() time.Time
}

// NewWindowSampler returns a stopped sampler over reg retaining the last
// capacity samples (minimum 2 — a delta needs two points). At the default
// 1s interval, 512 slots hold ~8.5 minutes: enough to cover WindowLong.
func NewWindowSampler(reg *Registry, capacity int) *WindowSampler {
	if capacity < 2 {
		capacity = 2
	}
	return &WindowSampler{reg: reg, ring: make([]WindowSample, capacity), now: time.Now}
}

// DefaultWindow is the process-wide sampler over the Default registry,
// started by the shared obs.CLI when serving diagnostics.
var DefaultWindow = NewWindowSampler(Default, 512)

// mWindowSamples counts snapshots taken; it lands in the sampled registry,
// so a live /debug/load also proves the sampler itself is ticking.
var mWindowSamples = C(NameObsWindowSamples)

// Start begins sampling every interval (minimum 10ms) until Stop. Starting
// a running sampler is a no-op.
func (s *WindowSampler) Start(interval time.Duration) {
	if s == nil || !s.running.CompareAndSwap(false, true) {
		return
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s.intervalNS.Store(int64(interval))
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.SampleNow() // first sample immediately, so Load is never empty while running
	go s.loop(interval, s.stop, s.done)
}

func (s *WindowSampler) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.SampleNow()
		}
	}
}

// Stop halts sampling and waits for the sampler goroutine to exit.
// Retained samples survive; Stop on a stopped sampler is a no-op.
func (s *WindowSampler) Stop() {
	if s == nil || !s.running.CompareAndSwap(true, false) {
		return
	}
	close(s.stop)
	<-s.done
}

// Running reports whether the sampler is active.
func (s *WindowSampler) Running() bool { return s != nil && s.running.Load() }

// Interval returns the sampling interval (0 if never started).
func (s *WindowSampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.intervalNS.Load())
}

// SampleNow takes one registry snapshot immediately, independent of the
// ticker. The ticker loop uses it; tests and one-shot CLIs can call it to
// bracket a workload without waiting out the interval.
func (s *WindowSampler) SampleNow() {
	if s == nil {
		return
	}
	mWindowSamples.Inc()
	_, counters, _, _, _, hists := s.reg.snapshot()
	sample := WindowSample{
		TimeUnixNS: s.now().UnixNano(),
		Counters:   counters,
		Hists:      hists,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.ring[(s.seq-1)%uint64(len(s.ring))] = sample
}

// recent returns the retained samples oldest-first.
func (s *WindowSampler) recent() []WindowSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.seq
	capacity := uint64(len(s.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]WindowSample, 0, n)
	for i := s.seq - n; i < s.seq; i++ {
		out = append(out, s.ring[i%capacity])
	}
	return out
}

// CounterWindow is one counter's activity inside a window.
type CounterWindow struct {
	// Delta is the counter increase across the window.
	Delta int64 `json:"delta"`
	// RatePerS is Delta divided by the window's actual span.
	RatePerS float64 `json:"rate_per_s"`
}

// HistWindow is one histogram's activity inside a window: observation
// count/rate plus percentiles of only the window's observations (delta
// percentiles — not lifetime).
type HistWindow struct {
	Count    int64   `json:"count"`
	RatePerS float64 `json:"rate_per_s"`
	Mean     float64 `json:"mean"`
	P50      int64   `json:"p50"`
	P95      int64   `json:"p95"`
	P99      int64   `json:"p99"`
}

// WindowStats aggregates every metric's activity across one window.
type WindowStats struct {
	// WindowNS is the nominal window span; SpanNS the span actually
	// covered (shorter than WindowNS until the process has run that long,
	// zero when only one sample exists).
	WindowNS   int64                    `json:"window_ns"`
	SpanNS     int64                    `json:"span_ns"`
	Counters   map[string]CounterWindow `json:"counters"`
	Histograms map[string]HistWindow    `json:"histograms"`
}

// LoadReport is the /debug/load document: the sampler's state plus one
// WindowStats per reported window.
type LoadReport struct {
	Running    bool                   `json:"running"`
	IntervalNS int64                  `json:"interval_ns"`
	Samples    int                    `json:"samples"`
	AsOfUnixNS int64                  `json:"as_of_unix_ns"`
	Windows    map[string]WindowStats `json:"windows"`
}

// windowLabels orders the reported windows deterministically.
var windowLabels = []struct {
	label string
	span  time.Duration
}{
	{"1m", WindowShort},
	{"5m", WindowLong},
}

// Load computes the windowed report from the retained samples: for each
// window, the newest sample is diffed against the oldest retained sample
// whose age (relative to the newest) is within the window.
func (s *WindowSampler) Load() LoadReport {
	rep := LoadReport{Windows: make(map[string]WindowStats, len(windowLabels))}
	if s == nil {
		return rep
	}
	rep.Running = s.Running()
	rep.IntervalNS = int64(s.Interval())
	samples := s.recent()
	rep.Samples = len(samples)
	if len(samples) == 0 {
		for _, w := range windowLabels {
			rep.Windows[w.label] = WindowStats{WindowNS: int64(w.span), Counters: map[string]CounterWindow{}, Histograms: map[string]HistWindow{}}
		}
		return rep
	}
	newest := samples[len(samples)-1]
	rep.AsOfUnixNS = newest.TimeUnixNS
	for _, w := range windowLabels {
		rep.Windows[w.label] = diffWindow(newest, samples, w.span)
	}
	return rep
}

// diffWindow diffs the newest sample against the oldest sample inside the
// window span.
func diffWindow(newest WindowSample, samples []WindowSample, span time.Duration) WindowStats {
	cutoff := newest.TimeUnixNS - int64(span)
	base := newest
	for _, cand := range samples {
		if cand.TimeUnixNS >= cutoff {
			base = cand
			break
		}
	}
	out := WindowStats{
		WindowNS:   int64(span),
		SpanNS:     newest.TimeUnixNS - base.TimeUnixNS,
		Counters:   make(map[string]CounterWindow, len(newest.Counters)),
		Histograms: make(map[string]HistWindow, len(newest.Hists)),
	}
	secs := float64(out.SpanNS) / float64(time.Second)
	rate := func(delta int64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(delta) / secs
	}
	for name, v := range newest.Counters {
		delta := v - base.Counters[name] // missing in base (younger counter) = 0 baseline
		out.Counters[name] = CounterWindow{Delta: delta, RatePerS: rate(delta)}
	}
	for name, h := range newest.Hists {
		d := deltaSnapshot(h, base.Hists[name])
		out.Histograms[name] = HistWindow{
			Count:    d.Count,
			RatePerS: rate(d.Count),
			Mean:     d.Mean(),
			P50:      d.Quantile(0.5),
			P95:      d.Quantile(0.95),
			P99:      d.Quantile(0.99),
		}
	}
	return out
}

// deltaSnapshot subtracts an older histogram snapshot from a newer one of
// the same histogram. A zero-value old snapshot (histogram younger than
// the baseline sample) leaves the new snapshot unchanged; mismatched
// bounds (impossible for one registry entry, defensive anyway) fall back
// the same way.
func deltaSnapshot(newer, older HistogramSnapshot) HistogramSnapshot {
	if older.Count == 0 || len(older.Bounds) != len(newer.Bounds) || len(older.Buckets) != len(newer.Buckets) {
		return newer
	}
	d := HistogramSnapshot{
		Count:   newer.Count - older.Count,
		Sum:     newer.Sum - older.Sum,
		Bounds:  newer.Bounds,
		Buckets: make([]int64, len(newer.Buckets)),
	}
	for i := range newer.Buckets {
		d.Buckets[i] = newer.Buckets[i] - older.Buckets[i]
	}
	return d
}

// WritePrometheusRates appends the windowed families to a /metrics
// exposition: for every counter a `<name>_rate1m`/`_rate5m` gauge pair,
// and for every histogram the same observation-rate pair plus
// `<name>_q1m`/`_q5m` summaries carrying the window's delta p50/p95/p99.
// Values use fixed-point formatting so every line satisfies the exposition
// grammar.
func (s *WindowSampler) WritePrometheusRates(w io.Writer) error {
	if s == nil {
		return nil
	}
	rep := s.Load()
	ew := &errWriter{w: w}
	for _, wl := range windowLabels {
		win, ok := rep.Windows[wl.label]
		if !ok {
			continue
		}
		suffix := "_rate" + wl.label
		counterNames := make([]string, 0, len(win.Counters))
		for name := range win.Counters {
			counterNames = append(counterNames, name)
		}
		sort.Strings(counterNames)
		for _, name := range counterNames {
			pn := promName(name) + suffix
			ew.printf("# HELP %s SLIM %s rate of counter %s\n", pn, wl.label, name)
			ew.printf("# TYPE %s gauge\n", pn)
			ew.printf("%s %.6f\n", pn, win.Counters[name].RatePerS)
		}
		histNames := make([]string, 0, len(win.Histograms))
		for name := range win.Histograms {
			histNames = append(histNames, name)
		}
		sort.Strings(histNames)
		for _, name := range histNames {
			hw := win.Histograms[name]
			pn := promName(name)
			ew.printf("# HELP %s%s SLIM %s observation rate of histogram %s\n", pn, suffix, wl.label, name)
			ew.printf("# TYPE %s%s gauge\n", pn, suffix)
			ew.printf("%s%s %.6f\n", pn, suffix, hw.RatePerS)
			qn := fmt.Sprintf("%s_q%s", pn, wl.label)
			ew.printf("# HELP %s SLIM %s delta-quantile estimates of histogram %s\n", qn, wl.label, name)
			ew.printf("# TYPE %s summary\n", qn)
			ew.printf("%s{quantile=\"0.5\"} %d\n", qn, hw.P50)
			ew.printf("%s{quantile=\"0.95\"} %d\n", qn, hw.P95)
			ew.printf("%s{quantile=\"0.99\"} %d\n", qn, hw.P99)
			ew.printf("%s_sum %d\n", qn, int64(hw.Mean*float64(hw.Count)))
			ew.printf("%s_count %d\n", qn, hw.Count)
		}
	}
	return ew.err
}
