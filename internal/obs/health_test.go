package obs

import (
	"context"
	"errors"
	"testing"
)

func TestHealthRegistryRun(t *testing.T) {
	reg := NewHealthRegistry()
	if got := reg.Run(context.Background()); len(got) != 0 || !Healthy(got) {
		t.Fatalf("empty registry: %+v healthy=%v", got, Healthy(got))
	}

	reg.Register("b.check", func(context.Context) error { return nil })
	reg.Register("a.check", func(context.Context) error { return errors.New("down") })
	results := reg.Run(context.Background())
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	// Name order, not registration order.
	if results[0].Name != "a.check" || results[1].Name != "b.check" {
		t.Fatalf("order: %+v", results)
	}
	if results[0].OK || results[0].Err != "down" {
		t.Fatalf("a.check: %+v", results[0])
	}
	if !results[1].OK || results[1].Err != "" {
		t.Fatalf("b.check: %+v", results[1])
	}
	if Healthy(results) {
		t.Error("one failing check must make the set unhealthy")
	}

	// Re-registering replaces; fixing the check flips the set healthy.
	reg.Register("a.check", func(context.Context) error { return nil })
	if got := reg.Run(context.Background()); !Healthy(got) {
		t.Fatalf("after replacement: %+v", got)
	}

	reg.Unregister("a.check")
	if names := reg.Names(); len(names) != 1 || names[0] != "b.check" {
		t.Fatalf("Names after Unregister: %v", names)
	}
}

func TestHealthRegistryContext(t *testing.T) {
	reg := NewHealthRegistry()
	reg.Register("ctx.check", func(ctx context.Context) error { return ctx.Err() })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := reg.Run(ctx)
	if len(results) != 1 || results[0].OK {
		t.Fatalf("cancelled context must reach the check: %+v", results)
	}
}
