package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// OpRecord is one finished operation in the tracer's ring buffer.
type OpRecord struct {
	// Seq numbers finished ops from 1; gaps in a dump mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// Op names the operation ("dmi.create", "core.view", ...).
	Op string `json:"op"`
	// Detail is a free-form argument summary (construct id, mark id, ...).
	Detail string `json:"detail,omitempty"`
	// Depth is the span's nesting depth (0 for roots).
	Depth int           `json:"depth"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	// Err is the error text for failed ops, empty on success.
	Err string `json:"err,omitempty"`
}

// Tracer keeps the last capacity finished spans in a ring buffer: a cheap,
// always-available flight recorder the binaries dump with -trace. All
// methods are safe for concurrent use and nil-safe, so packages can trace
// unconditionally.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	ring    []OpRecord
	seq     uint64 // total finished spans ever; ring[(seq-1) % cap] is newest
}

// NewTracer returns an enabled tracer retaining the last capacity ops
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]OpRecord, capacity)}
	t.enabled.Store(true)
	return t
}

// DefaultTracer is the process-wide flight recorder.
var DefaultTracer = NewTracer(256)

// SetEnabled turns recording on or off. When off, Start returns nil spans
// and the only cost per call site is one atomic load.
func (tr *Tracer) SetEnabled(on bool) {
	if tr != nil {
		tr.enabled.Store(on)
	}
}

// Enabled reports whether the tracer records.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.enabled.Load() }

// Span is an in-flight operation. Spans are not goroutine-safe; a span
// belongs to the goroutine that started it. A nil *Span is valid and all
// its methods no-op, so disabled tracing costs nothing at call sites.
type Span struct {
	tr     *Tracer
	op     string
	detail string
	depth  int
	start  time.Time
}

// Start begins a root span. Returns nil when the tracer is disabled or nil.
func (tr *Tracer) Start(op, detail string) *Span {
	if !tr.Enabled() {
		return nil
	}
	return &Span{tr: tr, op: op, detail: detail, start: time.Now()}
}

// Trace starts a root span on the DefaultTracer.
func Trace(op, detail string) *Span { return DefaultTracer.Start(op, detail) }

// Child begins a nested span one level deeper than s.
func (s *Span) Child(op, detail string) *Span {
	if s == nil || !s.tr.Enabled() {
		return nil
	}
	return &Span{tr: s.tr, op: op, detail: detail, depth: s.depth + 1, start: time.Now()}
}

// Finish records the span into the ring buffer.
func (s *Span) Finish() { s.FinishErr(nil) }

// FinishErr records the span, tagging it with the error when non-nil.
// Spans that exceeded the slow-op threshold also land in DefaultSlowOps,
// so every traced layer feeds the journal for free.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	rec := OpRecord{
		Op:     s.op,
		Detail: s.detail,
		Depth:  s.depth,
		Start:  s.start,
		Dur:    time.Since(s.start),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.tr.record(rec)
	DefaultSlowOps.Observe(s.op, s.detail, s.start, rec.Dur, err)
}

func (tr *Tracer) record(rec OpRecord) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.seq++
	rec.Seq = tr.seq
	tr.ring[(tr.seq-1)%uint64(len(tr.ring))] = rec
}

// Recent returns the retained ops oldest-first.
func (tr *Tracer) Recent() []OpRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.seq
	capacity := uint64(len(tr.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]OpRecord, 0, n)
	for i := tr.seq - n; i < tr.seq; i++ {
		out = append(out, tr.ring[i%capacity])
	}
	return out
}

// Reset discards all retained ops and restarts the sequence.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.ring {
		tr.ring[i] = OpRecord{}
	}
	tr.seq = 0
}

// WriteText dumps the retained ops oldest-first, one per line, indented by
// nesting depth — the post-mortem view behind slimpad -trace.
func (tr *Tracer) WriteText(w io.Writer) error {
	recs := tr.Recent()
	if _, err := fmt.Fprintf(w, "== recent ops (%d) ==\n", len(recs)); err != nil {
		return err
	}
	for _, r := range recs {
		indent := ""
		for i := 0; i < r.Depth; i++ {
			indent += "  "
		}
		suffix := ""
		if r.Err != "" {
			suffix = " err=" + r.Err
		}
		if _, err := fmt.Fprintf(w, "#%d %s%s %s %s%s\n",
			r.Seq, indent, r.Op, r.Detail, r.Dur.Round(time.Microsecond), suffix); err != nil {
			return err
		}
	}
	return nil
}
