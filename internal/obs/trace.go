package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Causal trace trees. Every root span mints a TraceID and a SpanID; child
// spans carry their parent's SpanID, so the flat ring of finished OpRecords
// can be reassembled into the tree of sub-operations one user gesture
// fanned out into (Tracer.Trace). Identity propagates across goroutines
// and layers via context.Context (ContextWithSpan / SpanFromContext /
// StartCtx in tracectx.go), and a reassembled trace exports as Chrome
// trace-event JSON for ui.perfetto.dev (WriteTraceEvents in perfetto.go).

// TraceID identifies one causal tree of spans: all the work one root
// operation fanned out into. It renders as 16 hex digits.
type TraceID uint64

// String renders the id as 16 lower-case hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the id as a quoted hex string (a raw uint64 would
// lose precision in JSON consumers that read numbers as float64).
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the quoted hex form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = TraceID(v)
	return err
}

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within a trace. It renders as 16 hex digits.
type SpanID uint64

// String renders the id as 16 lower-case hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the id as a quoted hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the quoted hex form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = SpanID(v)
	return err
}

func unmarshalHexID(b []byte) (uint64, error) {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, err
	}
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad span/trace id %q: %w", s, err)
	}
	return v, nil
}

// spanIDs numbers spans process-wide; ids stay unique within any ring.
var spanIDs atomic.Uint64

func newSpanID() SpanID { return SpanID(spanIDs.Add(1)) }

// newTraceID mints a random trace id, so traces from different processes
// (or tracer resets) do not collide when exports are merged.
func newTraceID() TraceID {
	for {
		if id := TraceID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// OpRecord is one finished operation in the tracer's ring buffer.
type OpRecord struct {
	// Seq numbers finished ops from 1; gaps in a dump mean the ring wrapped.
	Seq uint64
	// Trace identifies the causal tree this span belongs to.
	Trace TraceID
	// Span is this span's id; Parent is the parent span's id (0 for roots).
	Span   SpanID
	Parent SpanID
	// Op names the operation ("dmi.create", "core.view", ...).
	Op string
	// Detail is a free-form argument summary (construct id, mark id, an
	// EXPLAIN plan line, ...).
	Detail string
	// Depth is the span's nesting depth (0 for roots).
	Depth int
	Start time.Time
	Dur   time.Duration
	// Err is the error text for failed ops, empty on success.
	Err string
}

// opRecordJSON is the wire shape of an OpRecord. Timing is machine-first:
// start_unix_ns and dur_ns are plain integer nanoseconds. The RFC3339
// "start" key is kept readable for one release alongside start_unix_ns
// (docs/OBSERVABILITY.md); dur_ns has always been integer nanoseconds.
type opRecordJSON struct {
	Seq         uint64    `json:"seq"`
	Trace       TraceID   `json:"trace_id,omitempty"`
	Span        SpanID    `json:"span_id,omitempty"`
	Parent      SpanID    `json:"parent_id,omitempty"`
	Op          string    `json:"op"`
	Detail      string    `json:"detail,omitempty"`
	Depth       int       `json:"depth"`
	Start       time.Time `json:"start"`
	StartUnixNS int64     `json:"start_unix_ns"`
	DurNS       int64     `json:"dur_ns"`
	Err         string    `json:"err,omitempty"`
}

func (r OpRecord) wire() opRecordJSON {
	return opRecordJSON{
		Seq: r.Seq, Trace: r.Trace, Span: r.Span, Parent: r.Parent,
		Op: r.Op, Detail: r.Detail, Depth: r.Depth,
		Start: r.Start, StartUnixNS: r.Start.UnixNano(), DurNS: int64(r.Dur),
		Err: r.Err,
	}
}

func (w opRecordJSON) record() OpRecord {
	start := w.Start
	if w.StartUnixNS != 0 {
		start = time.Unix(0, w.StartUnixNS)
	}
	return OpRecord{
		Seq: w.Seq, Trace: w.Trace, Span: w.Span, Parent: w.Parent,
		Op: w.Op, Detail: w.Detail, Depth: w.Depth,
		Start: start, Dur: time.Duration(w.DurNS), Err: w.Err,
	}
}

// MarshalJSON emits the machine-parseable shape: integer start_unix_ns and
// dur_ns, hex trace/span/parent ids, plus the legacy RFC3339 "start" key.
func (r OpRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.wire())
}

// UnmarshalJSON accepts the wire shape, preferring start_unix_ns and
// falling back to the legacy RFC3339 start key.
func (r *OpRecord) UnmarshalJSON(b []byte) error {
	var w opRecordJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = w.record()
	return nil
}

// Sampling counters: roots kept vs. roots skipped by the probabilistic
// sampler. Error spans from unsampled traces are still recorded
// (always-on-error sampling), so dropped counts whole traces, not spans.
var (
	mTraceSampled = C(NameTraceSampled)
	mTraceDropped = C(NameTraceDropped)
)

// Tracer keeps the last capacity finished spans in a ring buffer: a cheap,
// always-available flight recorder the binaries dump with -trace and the
// diagnostics server reassembles into per-trace trees. All methods are
// safe for concurrent use and nil-safe, so packages can trace
// unconditionally.
type Tracer struct {
	enabled atomic.Bool
	// sampleBits holds math.Float64bits of the root-sampling rate.
	sampleBits atomic.Uint64
	mu         sync.Mutex
	ring       []OpRecord
	seq        uint64 // total finished spans ever; ring[(seq-1) % cap] is newest
}

// NewTracer returns an enabled tracer retaining the last capacity ops
// (minimum 1), sampling every root (rate 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]OpRecord, capacity)}
	t.enabled.Store(true)
	t.sampleBits.Store(math.Float64bits(1))
	return t
}

// DefaultTracer is the process-wide flight recorder.
var DefaultTracer = NewTracer(256)

// SetEnabled turns recording on or off. When off, Start returns nil spans
// and the only cost per call site is one atomic load.
func (tr *Tracer) SetEnabled(on bool) {
	if tr != nil {
		tr.enabled.Store(on)
	}
}

// Enabled reports whether the tracer records.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.enabled.Load() }

// SetSampleRate sets the probability that a new root span's trace is
// recorded. 1 (the default) records every trace; 0 records none. Spans of
// an unsampled trace still carry ids and still land in the ring when they
// finish with an error, so failures stay visible at any rate. The rate is
// one atomic store, safe to flip on a live process.
func (tr *Tracer) SetSampleRate(rate float64) {
	if tr == nil {
		return
	}
	rate = math.Min(1, math.Max(0, rate))
	tr.sampleBits.Store(math.Float64bits(rate))
}

// SampleRate returns the current root-sampling rate.
func (tr *Tracer) SampleRate() float64 {
	if tr == nil {
		return 0
	}
	return math.Float64frombits(tr.sampleBits.Load())
}

// sample decides one root span's fate. Rates 0 and 1 are deterministic.
func (tr *Tracer) sample() bool {
	switch rate := tr.SampleRate(); {
	case rate >= 1:
		return true
	case rate <= 0:
		return false
	default:
		return rand.Float64() < rate
	}
}

// Span is an in-flight operation. Spans are not goroutine-safe; a span
// belongs to the goroutine that started it (propagate identity to other
// goroutines via ContextWithSpan and start children there). A nil *Span is
// valid and all its methods no-op, so disabled tracing costs nothing at
// call sites.
type Span struct {
	tr      *Tracer
	op      string
	detail  string
	depth   int
	start   time.Time
	trace   TraceID
	id      SpanID
	parent  SpanID
	sampled bool
}

// Start begins a root span, minting a fresh TraceID. Returns nil when the
// tracer is disabled or nil.
func (tr *Tracer) Start(op, detail string) *Span {
	if !tr.Enabled() {
		return nil
	}
	return tr.root(op, detail)
}

func (tr *Tracer) root(op, detail string) *Span {
	s := &Span{
		tr: tr, op: op, detail: detail, start: time.Now(),
		trace: newTraceID(), id: newSpanID(), sampled: tr.sample(),
	}
	if s.sampled {
		mTraceSampled.Inc()
	} else {
		mTraceDropped.Inc()
	}
	return s
}

// Trace starts a root span on the DefaultTracer.
func Trace(op, detail string) *Span { return DefaultTracer.Start(op, detail) }

// Child begins a nested span one level deeper than s, inheriting s's
// TraceID and sampling decision.
func (s *Span) Child(op, detail string) *Span {
	if s == nil || !s.tr.Enabled() {
		return nil
	}
	return &Span{
		tr: s.tr, op: op, detail: detail, depth: s.depth + 1, start: time.Now(),
		trace: s.trace, id: newSpanID(), parent: s.id, sampled: s.sampled,
	}
}

// TraceID returns the id of the trace the span belongs to (0 for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SpanID returns the span's id (0 for nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Sampled reports whether the span's trace is being recorded.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// SetDetail replaces the span's detail — how EXPLAIN attaches its plan
// line once the query has run. Call before Finish, from the owning
// goroutine.
func (s *Span) SetDetail(detail string) {
	if s != nil {
		s.detail = detail
	}
}

// Finish records the span into the ring buffer.
func (s *Span) Finish() { s.FinishErr(nil) }

// FinishErr records the span, tagging it with the error when non-nil.
// Unsampled spans are recorded only when they carry an error (always-on-
// error sampling). Spans that exceeded the slow-op threshold also land in
// DefaultSlowOps regardless of sampling, so every traced layer feeds the
// journal for free.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	if s.sampled || err != nil {
		rec := OpRecord{
			Trace:  s.trace,
			Span:   s.id,
			Parent: s.parent,
			Op:     s.op,
			Detail: s.detail,
			Depth:  s.depth,
			Start:  s.start,
			Dur:    dur,
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.tr.record(rec)
	}
	DefaultSlowOps.Observe(s.op, s.detail, s.start, dur, err)
}

func (tr *Tracer) record(rec OpRecord) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.seq++
	rec.Seq = tr.seq
	tr.ring[(tr.seq-1)%uint64(len(tr.ring))] = rec
}

// Recent returns the retained ops oldest-first.
func (tr *Tracer) Recent() []OpRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.seq
	capacity := uint64(len(tr.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]OpRecord, 0, n)
	for i := tr.seq - n; i < tr.seq; i++ {
		out = append(out, tr.ring[i%capacity])
	}
	return out
}

// Reset discards all retained ops and restarts the sequence.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.ring {
		tr.ring[i] = OpRecord{}
	}
	tr.seq = 0
}

// WriteText dumps the retained ops oldest-first, one per line, indented by
// nesting depth — the post-mortem view behind slimpad -trace. Each line
// leads with the op's trace id, so related lines group visually even when
// traces interleave.
func (tr *Tracer) WriteText(w io.Writer) error {
	recs := tr.Recent()
	if _, err := fmt.Fprintf(w, "== recent ops (%d) ==\n", len(recs)); err != nil {
		return err
	}
	for _, r := range recs {
		indent := ""
		for i := 0; i < r.Depth; i++ {
			indent += "  "
		}
		suffix := ""
		if r.Err != "" {
			suffix = " err=" + r.Err
		}
		if _, err := fmt.Fprintf(w, "#%d %s %s%s %s %s%s\n",
			r.Seq, r.Trace, indent, r.Op, r.Detail, r.Dur.Round(time.Microsecond), suffix); err != nil {
			return err
		}
	}
	return nil
}
