// Package obs is the observability layer of the SLIM stack: cheap atomic
// counters and fixed-bucket latency histograms in a process-wide registry
// (exportable via expvar, text, and JSON), a ring-buffered op tracer for
// post-mortem dumps, nil-safe structured logging over log/slog, and a CPU
// profiling helper shared by the binaries.
//
// The paper's §6 prices SLIM's flexibility in "space efficiency of the data
// and the cost of interpreting manipulations on SLIM Store data" but offers
// no numbers; this package gives every layer (TRIM, Mark Management, the
// DMI, core orchestration) a live counterpart to the EXPERIMENTS.md
// benchmarks. In keeping with DESIGN.md §5 ("keep it lightweight") it is
// standard library only and hot paths pay one or two atomic operations per
// recorded event — and ~nothing when a facility is disabled.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any non-negative delta; negative deltas are allowed
// but discouraged — counters are meant to be monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value: it can go up and down (heap
// bytes, goroutine count). The zero value is ready to use; all methods are
// safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named counters, gauges, and histograms. Metrics are
// created on first use and live for the life of the registry; callers on
// hot paths should look a metric up once and cache the pointer.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	expvarOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry all SLIM packages record into.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed. Bounds are fixed at creation; later calls with
// different bounds return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// C is shorthand for Default.Counter.
func C(name string) *Counter { return Default.Counter(name) }

// G is shorthand for Default.Gauge.
func G(name string) *Gauge { return Default.Gauge(name) }

// H is shorthand for Default.Histogram with the standard latency buckets.
func H(name string) *Histogram { return Default.Histogram(name, LatencyBounds) }

// HSize is shorthand for Default.Histogram with the standard size buckets
// (batch sizes, triples per op).
func HSize(name string) *Histogram { return Default.Histogram(name, SizeBounds) }

// snapshot captures the registry under the read lock with sorted names, so
// every export format is deterministic.
func (r *Registry) snapshot() (counterNames []string, counters map[string]int64,
	gaugeNames []string, gauges map[string]int64,
	histNames []string, hists map[string]HistogramSnapshot) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counterNames = append(counterNames, name)
		counters[name] = c.Value()
	}
	gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gaugeNames = append(gaugeNames, name)
		gauges[name] = g.Value()
	}
	hists = make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		histNames = append(histNames, name)
		hists[name] = h.Snapshot()
	}
	sort.Strings(counterNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)
	return
}

// WriteText renders every metric, one per line, sorted by name: counters
// first, then gauges, then histograms with count/sum/mean and their
// nonzero buckets.
func (r *Registry) WriteText(w io.Writer) error {
	counterNames, counters, gaugeNames, gauges, histNames, hists := r.snapshot()
	if _, err := fmt.Fprintln(w, "== obs metrics =="); err != nil {
		return err
	}
	for _, name := range counterNames {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range gaugeNames {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range histNames {
		s := hists[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%d mean=%.1f p50=%d p95=%d p99=%d%s\n",
			name, s.Count, s.Sum, s.Mean(),
			s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99),
			s.bucketString()); err != nil {
			return err
		}
	}
	return nil
}

// registryJSON is the exported JSON shape of a registry.
type registryJSON struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// MarshalJSON exports the registry as
// {"counters":{...},"gauges":{...},"histograms":{...}}. encoding/json
// sorts map keys, so the output is deterministic.
func (r *Registry) MarshalJSON() ([]byte, error) {
	_, counters, _, gauges, _, hists := r.snapshot()
	return json.Marshal(registryJSON{Counters: counters, Gauges: gauges, Histograms: hists})
}

// String renders the registry as JSON; it makes *Registry an expvar.Var.
func (r *Registry) String() string {
	b, err := json.Marshal(r)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// PublishExpvar registers the registry with the expvar package under the
// given name, making it visible on /debug/vars alongside the runtime's
// variables. Safe to call more than once; only the first call (and its
// name) takes effect, because expvar forbids re-publishing.
func (r *Registry) PublishExpvar(name string) {
	r.expvarOnce.Do(func() { expvar.Publish(name, r) })
}

// EnableExpvar publishes the Default registry as "slim.obs".
func EnableExpvar() { Default.PublishExpvar("slim.obs") }
