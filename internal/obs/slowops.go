package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The slow-op journal is the second half of the flight recorder: where the
// tracer keeps the last N ops regardless of cost, the journal keeps only
// the ops that exceeded a latency threshold — the ones worth reading when
// a production pad "feels slow". Instrumented operations across the stack
// (TRIM queries, mark resolution, DMI manipulations via their spans) feed
// it; the diagnostics server dumps it at /debug/slowops.

// SlowOp is one journal entry: a finished operation that met or exceeded
// the journal's latency threshold.
type SlowOp struct {
	// Seq numbers recorded slow ops from 1; gaps mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// Op names the operation ("trim.select", "dmi.create", ...).
	Op string `json:"op"`
	// Detail is the op's argument summary — for TRIM queries, the EXPLAIN
	// line, so the journal answers "which query was slow and why".
	Detail string    `json:"detail,omitempty"`
	Start  time.Time `json:"start"`
	// DurNS is the operation's wall time in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Err is the error text for failed ops, empty on success.
	Err string `json:"err,omitempty"`
}

// SlowOpJournal retains the last capacity operations slower than a
// configurable threshold. All methods are safe for concurrent use and
// nil-safe. A threshold of zero (or below) disables recording, so the
// per-op cost at call sites is one atomic load.
type SlowOpJournal struct {
	thresholdNS atomic.Int64
	mu          sync.Mutex
	ring        []SlowOp
	seq         uint64
}

// DefaultSlowOpThreshold is the journal threshold binaries start with:
// high enough that index-served TRIM queries (~µs) never land in the
// journal, low enough to catch a full-store scan or a stalled base app.
const DefaultSlowOpThreshold = 10 * time.Millisecond

// NewSlowOpJournal returns a journal retaining the last capacity slow ops
// (minimum 1) with the given threshold.
func NewSlowOpJournal(capacity int, threshold time.Duration) *SlowOpJournal {
	if capacity < 1 {
		capacity = 1
	}
	j := &SlowOpJournal{ring: make([]SlowOp, capacity)}
	j.thresholdNS.Store(int64(threshold))
	return j
}

// DefaultSlowOps is the process-wide journal every instrumented layer
// records into.
var DefaultSlowOps = NewSlowOpJournal(256, DefaultSlowOpThreshold)

// mSlowRecorded counts journal entries; it lives in the same registry it
// observes, so scrapes reveal how often the threshold trips.
var mSlowRecorded = C("obs.slowops.recorded")

// SetThreshold replaces the latency threshold; zero or negative disables
// recording.
func (j *SlowOpJournal) SetThreshold(d time.Duration) {
	if j != nil {
		j.thresholdNS.Store(int64(d))
	}
}

// Threshold returns the current latency threshold.
func (j *SlowOpJournal) Threshold() time.Duration {
	if j == nil {
		return 0
	}
	return time.Duration(j.thresholdNS.Load())
}

// Slow reports whether a duration would be journaled. Call sites with
// expensive detail strings check it first and build the detail only on the
// slow path.
func (j *SlowOpJournal) Slow(d time.Duration) bool {
	if j == nil {
		return false
	}
	t := j.thresholdNS.Load()
	return t > 0 && int64(d) >= t
}

// Observe records the operation when its duration meets the threshold.
func (j *SlowOpJournal) Observe(op, detail string, start time.Time, d time.Duration, err error) {
	if !j.Slow(d) {
		return
	}
	rec := SlowOp{Op: op, Detail: detail, Start: start, DurNS: int64(d)}
	if err != nil {
		rec.Err = err.Error()
	}
	j.mu.Lock()
	j.seq++
	rec.Seq = j.seq
	j.ring[(j.seq-1)%uint64(len(j.ring))] = rec
	j.mu.Unlock()
	mSlowRecorded.Inc()
}

// Recent returns the retained slow ops oldest-first.
func (j *SlowOpJournal) Recent() []SlowOp {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.seq
	capacity := uint64(len(j.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]SlowOp, 0, n)
	for i := j.seq - n; i < j.seq; i++ {
		out = append(out, j.ring[i%capacity])
	}
	return out
}

// Reset discards all retained ops and restarts the sequence, keeping the
// threshold.
func (j *SlowOpJournal) Reset() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.ring {
		j.ring[i] = SlowOp{}
	}
	j.seq = 0
}

// slowOpsJSON is the exported JSON shape of the journal.
type slowOpsJSON struct {
	ThresholdNS int64    `json:"threshold_ns"`
	Ops         []SlowOp `json:"ops"`
}

// MarshalJSON exports the journal as {"threshold_ns":...,"ops":[...]}
// oldest-first; ops is always an array, never null.
func (j *SlowOpJournal) MarshalJSON() ([]byte, error) {
	ops := j.Recent()
	if ops == nil {
		ops = []SlowOp{}
	}
	return json.Marshal(slowOpsJSON{ThresholdNS: int64(j.Threshold()), Ops: ops})
}

// WriteText dumps the journal oldest-first, one op per line.
func (j *SlowOpJournal) WriteText(w io.Writer) error {
	recs := j.Recent()
	if _, err := fmt.Fprintf(w, "== slow ops (%d, threshold %s) ==\n",
		len(recs), j.Threshold()); err != nil {
		return err
	}
	for _, r := range recs {
		suffix := ""
		if r.Err != "" {
			suffix = " err=" + r.Err
		}
		if _, err := fmt.Fprintf(w, "#%d %s %s %s%s\n",
			r.Seq, r.Op, r.Detail, time.Duration(r.DurNS).Round(time.Microsecond), suffix); err != nil {
			return err
		}
	}
	return nil
}
