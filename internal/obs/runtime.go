package obs

import (
	"math"
	"runtime/metrics"
)

// runtime/metrics integration: the runtime exports cumulative
// distributions of goroutine scheduling latency and GC pause time that
// nothing in the stack surfaced — wedge detection could see goroutine
// counts but not scheduler stalls. The flight recorder reads them every
// sample, diffs against the previous read, and replays the per-interval
// bucket deltas into registry histograms (runtime.sched.latency.ns,
// runtime.gc.pause.ns), so /metrics, /debug/load's windowed quantiles,
// and the flight ring all see scheduler and GC pressure alongside the
// store's own latencies.

// Runtime metric names sampled each flight tick.
const (
	rmSchedLatencies = "/sched/latencies:seconds"
	rmGCPauses       = "/gc/pauses:seconds"
	rmMutexWait      = "/sync/mutex/wait/total:seconds"
	rmHeapObjects    = "/gc/heap/objects:objects"
	rmGomaxprocs     = "/sched/gomaxprocs:threads"
)

// runtimeSampler reads the runtime/metrics samples and tracks the
// previous cumulative state so each read yields interval deltas. It is
// not safe for concurrent use; the flight recorder serializes calls
// under its own mutex.
type runtimeSampler struct {
	samples   []metrics.Sample
	prevSched *metrics.Float64Histogram
	prevGC    *metrics.Float64Histogram
	prevWait  float64

	hSched    *Histogram
	hGC       *Histogram
	cWait     *Counter
	gObjects  *Gauge
	gMaxprocs *Gauge
}

func newRuntimeSampler() *runtimeSampler {
	return &runtimeSampler{
		samples: []metrics.Sample{
			{Name: rmSchedLatencies},
			{Name: rmGCPauses},
			{Name: rmMutexWait},
			{Name: rmHeapObjects},
			{Name: rmGomaxprocs},
		},
		hSched:    H(NameRuntimeSchedLatencyNS),
		hGC:       H(NameRuntimeGCPauseNS),
		cWait:     C(NameRuntimeMutexWaitNS),
		gObjects:  G(NameRuntimeHeapObjects),
		gMaxprocs: G(NameRuntimeGomaxprocs),
	}
}

// runtimeDelta is one interval's view of a cumulative runtime histogram.
type runtimeDelta struct {
	// boundsNS[i] is the representative value (upper bound, in
	// nanoseconds) of counts[i].
	boundsNS []int64
	counts   []uint64
	total    uint64
}

// read samples the runtime, updates the registry series, and returns the
// interval deltas of the two latency distributions plus the interval's
// mutex-wait nanoseconds.
func (rs *runtimeSampler) read() (sched, gc runtimeDelta, mutexWaitNS int64) {
	metrics.Read(rs.samples)
	for i := range rs.samples {
		s := &rs.samples[i]
		switch s.Name {
		case rmSchedLatencies:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				cur := s.Value.Float64Histogram()
				sched = histDelta(cur, rs.prevSched)
				rs.prevSched = cloneRuntimeHist(cur)
				replayDelta(rs.hSched, sched)
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				cur := s.Value.Float64Histogram()
				gc = histDelta(cur, rs.prevGC)
				rs.prevGC = cloneRuntimeHist(cur)
				replayDelta(rs.hGC, gc)
			}
		case rmMutexWait:
			if s.Value.Kind() == metrics.KindFloat64 {
				cur := s.Value.Float64()
				if d := cur - rs.prevWait; d > 0 {
					mutexWaitNS = int64(d * 1e9)
					rs.cWait.Add(mutexWaitNS)
				}
				rs.prevWait = cur
			}
		case rmHeapObjects:
			if s.Value.Kind() == metrics.KindUint64 {
				rs.gObjects.Set(int64(s.Value.Uint64()))
			}
		case rmGomaxprocs:
			if s.Value.Kind() == metrics.KindUint64 {
				rs.gMaxprocs.Set(int64(s.Value.Uint64()))
			}
		}
	}
	return sched, gc, mutexWaitNS
}

// cloneRuntimeHist copies the counts of a runtime histogram (the runtime
// reuses the backing arrays across Read calls when handed the same
// sample slice, so the previous state must be detached).
func cloneRuntimeHist(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

// histDelta subtracts prev from cur bucket-wise and converts the bucket
// boundaries to nanosecond representatives. A nil or shape-mismatched
// prev (first read, or the runtime regrew the distribution) yields the
// full cumulative state.
func histDelta(cur, prev *metrics.Float64Histogram) runtimeDelta {
	d := runtimeDelta{
		boundsNS: make([]int64, len(cur.Counts)),
		counts:   make([]uint64, len(cur.Counts)),
	}
	samePrev := prev != nil && len(prev.Counts) == len(cur.Counts)
	for i := range cur.Counts {
		n := cur.Counts[i]
		if samePrev && prev.Counts[i] <= n {
			n -= prev.Counts[i]
		} else if samePrev {
			n = 0
		}
		d.counts[i] = n
		d.total += n
		d.boundsNS[i] = bucketNS(cur.Buckets, i)
	}
	return d
}

// bucketNS picks the representative nanosecond value for bucket i of a
// runtime histogram: its upper bound, falling back to the lower bound
// when the upper is +Inf (and 0 when both are infinite).
func bucketNS(buckets []float64, i int) int64 {
	// Buckets has len(Counts)+1 boundaries; bucket i spans
	// [buckets[i], buckets[i+1]).
	if i+1 < len(buckets) && !math.IsInf(buckets[i+1], 0) {
		return int64(buckets[i+1] * 1e9)
	}
	if i < len(buckets) && !math.IsInf(buckets[i], 0) {
		return int64(buckets[i] * 1e9)
	}
	return 0
}

// replayDelta feeds one interval's bucket deltas into a registry
// histogram at each bucket's representative value.
func replayDelta(h *Histogram, d runtimeDelta) {
	for i, n := range d.counts {
		if n > 0 {
			h.observeN(d.boundsNS[i], int64(n))
		}
	}
}

// quantile returns the upper-bound q-quantile of the delta distribution
// (0 when it is empty).
func (d runtimeDelta) quantile(q float64) int64 {
	if d.total == 0 {
		return 0
	}
	rank := uint64(q * float64(d.total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range d.counts {
		seen += n
		if seen >= rank {
			return d.boundsNS[i]
		}
	}
	return d.boundsNS[len(d.boundsNS)-1]
}

// max returns the largest nonempty bucket's representative value.
func (d runtimeDelta) max() int64 {
	for i := len(d.counts) - 1; i >= 0; i-- {
		if d.counts[i] > 0 {
			return d.boundsNS[i]
		}
	}
	return 0
}

// sumNS approximates the delta distribution's total nanoseconds (counts
// times representative bucket values).
func (d runtimeDelta) sumNS() int64 {
	var sum int64
	for i, n := range d.counts {
		sum += d.boundsNS[i] * int64(n)
	}
	return sum
}
