package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime flight recorder: a ticker-driven ring of periodic runtime
// snapshots (goroutines, heap, GC), so a slow span in a trace can be
// checked against what the runtime was doing at that instant. The ring is
// served at /debug/flight; the latest sample is republished as flight.*
// gauges for Prometheus.

// FlightSample is one periodic runtime snapshot.
type FlightSample struct {
	TimeUnixNS      int64  `json:"time_unix_ns"`
	Goroutines      int    `json:"goroutines"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	LastGCPauseNS   uint64 `json:"last_gc_pause_ns"`
	NextGCBytes     uint64 `json:"next_gc_bytes"`

	// Space-accounting fold-in (space.go): heap bytes already returned to
	// the OS, and the allocation-bytes rate since the previous ring sample
	// (0 on the first). The rate is the churn number the alloc-per-op
	// probes explain: a flat heap with a high alloc rate is the
	// garbage-per-query signature ROADMAP item 1 attacks.
	HeapReleasedBytes uint64  `json:"heap_released_bytes"`
	AllocBytesPerSec  float64 `json:"alloc_bytes_per_sec"`

	// runtime/metrics interval deltas (runtime.go): the scheduling-latency
	// and GC-pause distributions observed since the previous sample, plus
	// the interval's total goroutine-blocked-on-sync time. These close the
	// wedge-detection gap where the ring showed goroutine counts but not
	// whether those goroutines could get scheduled.
	SchedLatP50NS  int64 `json:"sched_lat_p50_ns"`
	SchedLatP95NS  int64 `json:"sched_lat_p95_ns"`
	SchedLatP99NS  int64 `json:"sched_lat_p99_ns"`
	SchedLatMaxNS  int64 `json:"sched_lat_max_ns"`
	GCPauseP95NS   int64 `json:"gc_pause_p95_ns"`
	GCPauseMaxNS   int64 `json:"gc_pause_max_ns"`
	GCPauseTotalNS int64 `json:"gc_pause_total_ns"`
	MutexWaitNS    int64 `json:"mutex_wait_ns"`
}

// FlightRecorder samples the runtime on a fixed interval into a ring
// buffer. Start/Stop are idempotent; all methods are safe for concurrent
// use.
type FlightRecorder struct {
	mu sync.Mutex
	// ring and seq are the sample ring and its monotone write cursor;
	// guarded by mu.
	ring []FlightSample
	seq  uint64
	// rt diffs the runtime/metrics distributions between samples; guarded
	// by mu (observe holds it across the read so deltas stay coherent).
	rt *runtimeSampler

	running      atomic.Bool
	intervalNS   atomic.Int64
	lastNS       atomic.Int64
	lastSchedP99 atomic.Int64
	stop         chan struct{}
	done         chan struct{}
}

// NewFlightRecorder returns a stopped recorder retaining the last capacity
// samples (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{ring: make([]FlightSample, capacity), rt: newRuntimeSampler()}
}

// DefaultFlight is the process-wide flight recorder, started by the shared
// obs.CLI when serving diagnostics. At the default 1s interval its 512
// slots hold ~8.5 minutes of history.
var DefaultFlight = NewFlightRecorder(512)

// Start begins sampling every interval (minimum 10ms) until Stop. Starting
// a running recorder is a no-op.
func (f *FlightRecorder) Start(interval time.Duration) {
	if f == nil || !f.running.CompareAndSwap(false, true) {
		return
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	f.intervalNS.Store(int64(interval))
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	f.observe() // one sample immediately, so Recent is never empty while running
	go f.loop(interval, f.stop, f.done)
}

func (f *FlightRecorder) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			f.observe()
		}
	}
}

// Stop halts sampling and waits for the sampler goroutine to exit.
// Retained samples survive; Stop on a stopped recorder is a no-op.
func (f *FlightRecorder) Stop() {
	if f == nil || !f.running.CompareAndSwap(true, false) {
		return
	}
	close(f.stop)
	<-f.done
}

// Running reports whether the sampler is active.
func (f *FlightRecorder) Running() bool { return f != nil && f.running.Load() }

// Interval returns the sampling interval (0 if never started).
func (f *FlightRecorder) Interval() time.Duration {
	if f == nil {
		return 0
	}
	return time.Duration(f.intervalNS.Load())
}

// observe takes one snapshot, appends it to the ring, and republishes the
// flight.* gauges.
func (f *FlightRecorder) observe() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := FlightSample{
		TimeUnixNS:        time.Now().UnixNano(),
		Goroutines:        runtime.NumGoroutine(),
		HeapAllocBytes:    ms.HeapAlloc,
		HeapInuseBytes:    ms.HeapInuse,
		TotalAllocBytes:   ms.TotalAlloc,
		NumGC:             ms.NumGC,
		LastGCPauseNS:     ms.PauseNs[(ms.NumGC+255)%256],
		NextGCBytes:       ms.NextGC,
		HeapReleasedBytes: ms.HeapReleased,
	}
	f.lastNS.Store(s.TimeUnixNS)

	G(NameFlightGoroutines).Set(int64(s.Goroutines))
	G(NameFlightHeapAlloc).Set(int64(s.HeapAllocBytes))
	G(NameFlightHeapInuse).Set(int64(s.HeapInuseBytes))
	G(NameFlightGCCount).Set(int64(s.NumGC))
	G(NameFlightGCPauseLast).Set(int64(s.LastGCPauseNS))
	G(NameFlightGCNext).Set(int64(s.NextGCBytes))

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seq > 0 {
		prev := f.ring[(f.seq-1)%uint64(len(f.ring))]
		if prev.TimeUnixNS < s.TimeUnixNS && prev.TotalAllocBytes <= s.TotalAllocBytes {
			dt := float64(s.TimeUnixNS-prev.TimeUnixNS) / 1e9
			s.AllocBytesPerSec = float64(s.TotalAllocBytes-prev.TotalAllocBytes) / dt
		}
	}
	sched, gc, mutexWait := f.rt.read()
	s.SchedLatP50NS = sched.quantile(0.5)
	s.SchedLatP95NS = sched.quantile(0.95)
	s.SchedLatP99NS = sched.quantile(0.99)
	s.SchedLatMaxNS = sched.max()
	s.GCPauseP95NS = gc.quantile(0.95)
	s.GCPauseMaxNS = gc.max()
	s.GCPauseTotalNS = gc.sumNS()
	s.MutexWaitNS = mutexWait
	f.lastSchedP99.Store(s.SchedLatP99NS)
	f.seq++
	f.ring[(f.seq-1)%uint64(len(f.ring))] = s
}

// Recent returns the retained samples oldest-first.
func (f *FlightRecorder) Recent() []FlightSample {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.seq
	capacity := uint64(len(f.ring))
	if n > capacity {
		n = capacity
	}
	out := make([]FlightSample, 0, n)
	for i := f.seq - n; i < f.seq; i++ {
		out = append(out, f.ring[i%capacity])
	}
	return out
}

// MarshalJSON renders the recorder state for /debug/flight.
func (f *FlightRecorder) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Running    bool           `json:"running"`
		IntervalNS int64          `json:"interval_ns"`
		Samples    []FlightSample `json:"samples"`
	}{f.Running(), int64(f.Interval()), f.Recent()})
}

// flightStallNS is the interval sched-latency p99 past which FlightCheck
// reports a scheduler stall: goroutines exist but are not getting CPU
// time. At 1s it only trips when the process is genuinely wedged.
const flightStallNS = int64(time.Second)

// FlightCheck returns a health check that fails when the recorder is not
// running, its last sample is older than three intervals (a wedged
// sampler goroutine), or the last interval's p99 goroutine scheduling
// latency crossed the stall threshold (goroutines runnable but starved —
// the wedge goroutine counts alone cannot see).
func FlightCheck(f *FlightRecorder) HealthCheck {
	return func(ctx context.Context) error {
		_ = ctx
		if !f.Running() {
			return fmt.Errorf("flight recorder not running")
		}
		interval := f.Interval()
		if age := time.Duration(time.Now().UnixNano() - f.lastNS.Load()); age > 3*interval {
			return fmt.Errorf("flight recorder stalled: last sample %s ago (interval %s)", age.Round(time.Millisecond), interval)
		}
		if p99 := f.lastSchedP99.Load(); p99 > flightStallNS {
			return fmt.Errorf("scheduler stall: p99 scheduling latency %s in the last interval", time.Duration(p99).Round(time.Millisecond))
		}
		return nil
	}
}
