package obs

import (
	"context"
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"
)

// TestHistDelta: bucket-wise subtraction against the previous cumulative
// state, with nil or reshaped previous states falling back to the full
// cumulative histogram.
func TestHistDelta(t *testing.T) {
	buckets := []float64{0, 1e-6, 1e-3, math.Inf(1)}
	prev := &metrics.Float64Histogram{Counts: []uint64{5, 10, 2}, Buckets: buckets}
	cur := &metrics.Float64Histogram{Counts: []uint64{5, 13, 4}, Buckets: buckets}

	d := histDelta(cur, prev)
	if want := []uint64{0, 3, 2}; len(d.counts) != 3 || d.counts[0] != want[0] || d.counts[1] != want[1] || d.counts[2] != want[2] {
		t.Fatalf("delta counts = %v, want %v", d.counts, want)
	}
	if d.total != 5 {
		t.Fatalf("total = %d, want 5", d.total)
	}
	// Bucket 0 spans [0, 1µs) -> upper bound 1000ns; bucket 2's upper is
	// +Inf -> its lower bound 1ms stands in.
	if d.boundsNS[0] != 1_000 || d.boundsNS[1] != 1_000_000 || d.boundsNS[2] != 1_000_000 {
		t.Fatalf("boundsNS = %v", d.boundsNS)
	}

	if full := histDelta(cur, nil); full.total != 22 {
		t.Fatalf("nil prev total = %d, want the full cumulative 22", full.total)
	}
	reshaped := &metrics.Float64Histogram{Counts: []uint64{1}, Buckets: []float64{0, math.Inf(1)}}
	if full := histDelta(cur, reshaped); full.total != 22 {
		t.Fatalf("reshaped prev total = %d, want 22", full.total)
	}
	// A cumulative counter going backwards (should not happen) clamps to 0
	// instead of underflowing.
	back := &metrics.Float64Histogram{Counts: []uint64{9, 9, 9}, Buckets: buckets}
	if d := histDelta(cur, back); d.counts[0] != 0 || d.counts[1] != 4 {
		t.Fatalf("backwards prev delta = %v", d.counts)
	}
}

// TestRuntimeDeltaQuantiles: quantile/max/sum over a known distribution.
func TestRuntimeDeltaQuantiles(t *testing.T) {
	d := runtimeDelta{
		boundsNS: []int64{100, 1_000, 10_000},
		counts:   []uint64{90, 9, 1},
		total:    100,
	}
	if q := d.quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := d.quantile(0.95); q != 1_000 {
		t.Fatalf("p95 = %d, want 1000", q)
	}
	if q := d.quantile(1); q != 10_000 {
		t.Fatalf("p100 = %d, want 10000", q)
	}
	if m := d.max(); m != 10_000 {
		t.Fatalf("max = %d, want 10000", m)
	}
	if s := d.sumNS(); s != 90*100+9*1_000+1*10_000 {
		t.Fatalf("sum = %d", s)
	}
	var empty runtimeDelta
	if empty.quantile(0.99) != 0 || empty.max() != 0 || empty.sumNS() != 0 {
		t.Fatal("empty delta must report zeros")
	}
}

// TestRuntimeSamplerRead: a real read populates the gauges and feeds the
// sched-latency registry histogram; a second read yields interval deltas
// only.
func TestRuntimeSamplerRead(t *testing.T) {
	rs := newRuntimeSampler()
	sched, _, _ := rs.read()
	// The process has been scheduling goroutines since startup, so the
	// first (cumulative) read cannot be empty.
	if sched.total == 0 {
		t.Fatal("first sched read saw no scheduling events")
	}
	if rs.gMaxprocs.Value() < 1 {
		t.Fatalf("gomaxprocs gauge = %d", rs.gMaxprocs.Value())
	}
	if rs.gObjects.Value() <= 0 {
		t.Fatalf("heap objects gauge = %d", rs.gObjects.Value())
	}
	if rs.hSched.Snapshot().Count == 0 {
		t.Fatal("sched registry histogram not fed")
	}

	// Force some GC activity so the pause distribution moves, then check
	// the second read carries it.
	runtime.GC()
	runtime.GC()
	if _, gc2, _ := rs.read(); gc2.total == 0 {
		t.Fatal("second read saw no GC pauses after two forced GCs")
	}
}

// TestFlightSampleRuntimeFields: observe() fills the sched/GC fields and
// FlightCheck trips on a stalled scheduler reading.
func TestFlightSampleRuntimeFields(t *testing.T) {
	f := NewFlightRecorder(4)
	runtime.GC()
	f.observe()
	s := f.Recent()[0]
	if s.SchedLatP99NS < s.SchedLatP50NS || s.SchedLatMaxNS < s.SchedLatP99NS {
		t.Fatalf("sched quantiles disordered: %+v", s)
	}
	if s.GCPauseTotalNS < 0 || s.MutexWaitNS < 0 {
		t.Fatalf("negative interval totals: %+v", s)
	}

	f.Start(10 * time.Millisecond)
	defer f.Stop()
	check := FlightCheck(f)
	if err := check(context.Background()); err != nil {
		t.Fatalf("healthy recorder degraded: %v", err)
	}
	f.lastSchedP99.Store(flightStallNS + 1)
	if err := check(context.Background()); err == nil {
		t.Fatal("scheduler stall not reported")
	}
}
