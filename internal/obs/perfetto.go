package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event ("Perfetto JSON") export. The legacy trace-event
// format is the lingua franca of timeline viewers: an object with a
// traceEvents array of "X" (complete) events carrying name/ts/dur in
// microseconds, which ui.perfetto.dev and chrome://tracing both open
// directly. We map each OpRecord to one complete event; causality that
// JSON can't express structurally rides in args.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args traceEventArgs `json:"args"`
}

type traceEventArgs struct {
	Seq    uint64 `json:"seq"`
	Trace  string `json:"trace_id"`
	Span   string `json:"span_id"`
	Parent string `json:"parent_id,omitempty"`
	Detail string `json:"detail,omitempty"`
	Err    string `json:"err,omitempty"`
}

// traceEventFile is the top-level JSON object.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents encodes the records as Chrome trace-event JSON. Spans
// of one trace are laid out on as few tracks (tid) as their overlap
// allows, so a trace renders as stacked lanes; distinct traces get
// disjoint tid ranges. The cat field is the op's layer prefix ("dmi",
// "trim", "mark", ...), so layers can be toggled in the viewer.
func WriteTraceEvents(w io.Writer, recs []OpRecord) error {
	// Deterministic layout: sort by start time (then seq) before assigning
	// tracks, independent of ring arrival order.
	sorted := make([]OpRecord, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].Seq < sorted[j].Seq
	})

	// Greedy interval partitioning per trace: place each span on the first
	// track whose last occupant ended before this span starts. Lanes are
	// assigned before track ids so each trace's final lane count is known
	// when the disjoint tid ranges are carved out.
	tracks := make(map[TraceID][]int64) // per-trace lane end times
	lanes := make([]int, len(sorted))
	var order []TraceID
	for i, r := range sorted {
		if _, ok := tracks[r.Trace]; !ok {
			order = append(order, r.Trace)
		}
		startNS := r.Start.UnixNano()
		endNS := startNS + int64(r.Dur)
		lane := -1
		for l, laneEnd := range tracks[r.Trace] {
			if laneEnd <= startNS {
				tracks[r.Trace][l] = endNS
				lane = l
				break
			}
		}
		if lane == -1 {
			tracks[r.Trace] = append(tracks[r.Trace], endNS)
			lane = len(tracks[r.Trace]) - 1
		}
		lanes[i] = lane
	}
	traceBase := make(map[TraceID]int, len(order))
	nextBase := 0
	for _, id := range order {
		traceBase[id] = nextBase
		nextBase += len(tracks[id])
	}

	file := traceEventFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ns"}
	for i, r := range sorted {
		startNS := r.Start.UnixNano()
		lane := lanes[i]

		cat := r.Op
		for i := 0; i < len(cat); i++ {
			if cat[i] == '.' {
				cat = cat[:i]
				break
			}
		}
		ev := traceEvent{
			Name: r.Op, Cat: cat, Ph: "X",
			TS:  float64(startNS) / 1e3,
			Dur: float64(int64(r.Dur)) / 1e3,
			PID: 1, TID: traceBase[r.Trace] + lane + 1,
			Args: traceEventArgs{
				Seq: r.Seq, Trace: r.Trace.String(), Span: r.Span.String(),
				Detail: r.Detail, Err: r.Err,
			},
		}
		if r.Parent != 0 {
			ev.Args.Parent = r.Parent.String()
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
