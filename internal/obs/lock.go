package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Instrumented locks: drop-in replacements for sync.Mutex and
// sync.RWMutex that record how long callers wait to acquire the lock and
// how long they hold it, into per-lock wait/hold histograms plus
// acquisition and contention counters in the Default registry. The wait
// histogram receives a 0 for every uncontended acquisition (detected with
// TryLock, so the fast path costs one CAS plus the histogram's atomics),
// which makes its sample count the acquisition count and keeps windowed
// p95s honest — a lock that is never waited on reports p95 wait = 0, not
// "no data".
//
// Every tracked lock also lands in the process-wide lock table, which
// backs /debug/contention, the obs.contention health check, and the
// per-lock stats trim.Stats() and the CLIs surface. Locks are identified
// by name (a Lock* constant from names.go); creating a second lock with
// the same name shares the first one's metrics, so the table aggregates
// across store instances the way the registry aggregates counters.

// lockModeMetrics is one mode's (read or write) metric handles.
type lockModeMetrics struct {
	wait      *Histogram
	hold      *Histogram
	total     *Counter
	contended *Counter
}

func newLockModeMetrics(name, mode string) lockModeMetrics {
	return lockModeMetrics{
		wait:      H(fmt.Sprintf(FmtLockWaitNS, name, mode)),
		hold:      H(fmt.Sprintf(FmtLockHoldNS, name, mode)),
		total:     C(fmt.Sprintf(FmtLockTotal, name, mode)),
		contended: C(fmt.Sprintf(FmtLockContended, name, mode)),
	}
}

// acquire records one acquisition whose wait started at startNS (0 for an
// uncontended fast-path acquisition).
func (lm *lockModeMetrics) acquired(waitNS int64) {
	lm.total.Inc()
	if waitNS > 0 {
		lm.contended.Inc()
	}
	lm.wait.Observe(waitNS)
}

// TrackedMutex is a sync.Mutex recording wait-time and hold-time
// histograms and contention counters under the given lock name. The zero
// value is not usable; call NewTrackedMutex.
type TrackedMutex struct {
	mu sync.Mutex
	w  lockModeMetrics
	// acquiredNS is the holder's acquisition timestamp; only the goroutine
	// holding mu touches it.
	acquiredNS int64
}

// NewTrackedMutex returns an unlocked tracked mutex registered in the
// process-wide lock table under name.
func NewTrackedMutex(name string) *TrackedMutex {
	m := &TrackedMutex{w: newLockModeMetrics(name, "w")}
	DefaultLocks.add(name, &m.w, nil)
	return m
}

// Lock acquires the mutex, recording the wait.
func (m *TrackedMutex) Lock() {
	if m.mu.TryLock() {
		m.w.acquired(0)
	} else {
		start := time.Now()
		m.mu.Lock()
		m.w.acquired(int64(time.Since(start)))
	}
	m.acquiredNS = time.Now().UnixNano()
}

// Unlock releases the mutex, recording the hold time.
func (m *TrackedMutex) Unlock() {
	m.w.hold.Observe(time.Now().UnixNano() - m.acquiredNS)
	m.mu.Unlock()
}

// TrackedRWMutex is a sync.RWMutex recording wait-time and hold-time
// histograms and contention counters, split by mode: "w" for the
// exclusive side, "r" for readers. Writer hold time is per-acquisition;
// reader hold time is per read *epoch* — the span from the first reader
// entering an idle lock to the last reader leaving — which is exactly the
// span writers are blocked for. The zero value is not usable; call
// NewTrackedRWMutex.
type TrackedRWMutex struct {
	mu sync.RWMutex
	w  lockModeMetrics
	r  lockModeMetrics
	// acquiredNS is the writer's acquisition timestamp; only the goroutine
	// holding the write lock touches it.
	acquiredNS int64
	// readers counts current read holders; readEpochNS is the timestamp at
	// which the current read epoch began (readers went 0 -> 1).
	readers     atomic.Int64
	readEpochNS atomic.Int64
}

// NewTrackedRWMutex returns an unlocked tracked RWMutex registered in the
// process-wide lock table under name.
func NewTrackedRWMutex(name string) *TrackedRWMutex {
	m := &TrackedRWMutex{
		w: newLockModeMetrics(name, "w"),
		r: newLockModeMetrics(name, "r"),
	}
	DefaultLocks.add(name, &m.w, &m.r)
	return m
}

// Lock acquires the write lock, recording the wait.
func (m *TrackedRWMutex) Lock() {
	if m.mu.TryLock() {
		m.w.acquired(0)
	} else {
		start := time.Now()
		m.mu.Lock()
		m.w.acquired(int64(time.Since(start)))
	}
	m.acquiredNS = time.Now().UnixNano()
}

// Unlock releases the write lock, recording the hold time.
func (m *TrackedRWMutex) Unlock() {
	m.w.hold.Observe(time.Now().UnixNano() - m.acquiredNS)
	m.mu.Unlock()
}

// RLock acquires a read lock, recording the wait.
func (m *TrackedRWMutex) RLock() {
	if m.mu.TryRLock() {
		m.r.acquired(0)
	} else {
		start := time.Now()
		m.mu.RLock()
		m.r.acquired(int64(time.Since(start)))
	}
	if m.readers.Add(1) == 1 {
		m.readEpochNS.Store(time.Now().UnixNano())
	}
}

// RUnlock releases a read lock. When the last reader leaves, the read
// epoch's duration is recorded as the read hold time.
func (m *TrackedRWMutex) RUnlock() {
	if m.readers.Add(-1) == 0 {
		m.r.hold.Observe(time.Now().UnixNano() - m.readEpochNS.Load())
	}
	m.mu.RUnlock()
}

// LockModeStats is one mode's (read or write) contention summary: the
// derived numbers for /debug/contention and trim.Stats(). The full
// distributions stay available as the lock_* histogram families on
// /metrics.
type LockModeStats struct {
	// Total counts acquisitions; Contended those that had to wait.
	Total     int64 `json:"total"`
	Contended int64 `json:"contended"`
	// Wait quantiles cover every acquisition (0 when the lock was free).
	WaitP50NS   int64   `json:"wait_p50_ns"`
	WaitP95NS   int64   `json:"wait_p95_ns"`
	WaitP99NS   int64   `json:"wait_p99_ns"`
	WaitMeanNS  float64 `json:"wait_mean_ns"`
	HoldP50NS   int64   `json:"hold_p50_ns"`
	HoldP95NS   int64   `json:"hold_p95_ns"`
	HoldP99NS   int64   `json:"hold_p99_ns"`
	HoldMeanNS  float64 `json:"hold_mean_ns"`
	WaitSamples int64   `json:"wait_samples"`
}

func (lm *lockModeMetrics) stats() LockModeStats {
	wait := lm.wait.Snapshot()
	hold := lm.hold.Snapshot()
	return LockModeStats{
		Total:       lm.total.Value(),
		Contended:   lm.contended.Value(),
		WaitP50NS:   wait.Quantile(0.5),
		WaitP95NS:   wait.Quantile(0.95),
		WaitP99NS:   wait.Quantile(0.99),
		WaitMeanNS:  wait.Mean(),
		HoldP50NS:   hold.Quantile(0.5),
		HoldP95NS:   hold.Quantile(0.95),
		HoldP99NS:   hold.Quantile(0.99),
		HoldMeanNS:  hold.Mean(),
		WaitSamples: wait.Count,
	}
}

// LockStats is one tracked lock's contention summary. Read is nil for
// plain mutexes.
type LockStats struct {
	Name  string         `json:"name"`
	Write LockModeStats  `json:"write"`
	Read  *LockModeStats `json:"read,omitempty"`
}

// lockEntry is one named lock's metric handles in the table.
type lockEntry struct {
	w *lockModeMetrics
	r *lockModeMetrics // nil for plain mutexes
}

// LockTable is the registry of tracked locks; it renders
// /debug/contention and feeds ContentionCheck. All methods are safe for
// concurrent use and nil-safe.
type LockTable struct {
	mu    sync.RWMutex
	locks map[string]*lockEntry // guarded by mu
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{locks: make(map[string]*lockEntry)}
}

// DefaultLocks is the process-wide lock table every tracked lock
// registers into.
var DefaultLocks = NewLockTable()

// add registers a lock's metric handles. Re-registering a name keeps the
// first entry: the handles resolve to the same registry metrics anyway,
// so later instances share the aggregate.
func (t *LockTable) add(name string, w, r *lockModeMetrics) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.locks[name]; ok {
		return
	}
	t.locks[name] = &lockEntry{w: w, r: r}
}

// Profiles returns every tracked lock's stats, sorted by name.
func (t *LockTable) Profiles() []LockStats {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	names := make([]string, 0, len(t.locks))
	entries := make(map[string]*lockEntry, len(t.locks))
	for name, e := range t.locks {
		names = append(names, name)
		entries[name] = e
	}
	t.mu.RUnlock()
	sort.Strings(names)
	out := make([]LockStats, 0, len(names))
	for _, name := range names {
		out = append(out, entries[name].stats(name))
	}
	return out
}

// Profile returns one named lock's stats; ok is false when the name is
// not tracked (no tracked lock was constructed under it yet).
func (t *LockTable) Profile(name string) (LockStats, bool) {
	if t == nil {
		return LockStats{}, false
	}
	t.mu.RLock()
	e, ok := t.locks[name]
	t.mu.RUnlock()
	if !ok {
		return LockStats{}, false
	}
	return e.stats(name), true
}

func (e *lockEntry) stats(name string) LockStats {
	s := LockStats{Name: name, Write: e.w.stats()}
	if e.r != nil {
		r := e.r.stats()
		s.Read = &r
	}
	return s
}

// MarshalJSON renders the table for /debug/contention.
func (t *LockTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Locks []LockStats `json:"locks"`
	}{Locks: t.Profiles()})
}

// LockProfiles is shorthand for DefaultLocks.Profiles.
func LockProfiles() []LockStats { return DefaultLocks.Profiles() }

// LockProfile is shorthand for DefaultLocks.Profile.
func LockProfile(name string) (LockStats, bool) { return DefaultLocks.Profile(name) }

// DefaultContentionThreshold is the p95 lock-wait level past which
// ContentionCheck degrades /healthz. Because wait histograms record a 0
// for every uncontended acquisition, crossing it means more than 5% of
// all acquisitions waited that long — sustained contention, not a blip.
const DefaultContentionThreshold = 50 * time.Millisecond

// ContentionCheck returns a health check that fails when any tracked
// lock's p95 wait (read or write side) exceeds threshold (0 means
// DefaultContentionThreshold).
func ContentionCheck(t *LockTable, threshold time.Duration) HealthCheck {
	if threshold <= 0 {
		threshold = DefaultContentionThreshold
	}
	return func(ctx context.Context) error {
		_ = ctx
		for _, l := range t.Profiles() {
			worst := l.Write.WaitP95NS
			mode := "write"
			if l.Read != nil && l.Read.WaitP95NS > worst {
				worst, mode = l.Read.WaitP95NS, "read"
			}
			if worst > int64(threshold) {
				return fmt.Errorf("lock %s: p95 %s wait %s exceeds %s",
					l.Name, mode, time.Duration(worst).Round(time.Microsecond), threshold)
			}
		}
		return nil
	}
}
