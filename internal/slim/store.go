// Package slim implements the SLIM Store of Fig. 9: superimposed
// applications manipulate application data through a Data Manipulation
// Interface (DMI) while the store keeps the ground truth as triples in a
// TRIM manager. "By restricting manipulation of data through the DMI, we
// store the triples without intervention from the superimposed application"
// (§4.4).
//
// The package also implements the paper's stated direction of "automatically
// generating specialized DMIs from data models" (§4.4, ref [24]): GenerateDMI
// derives a model-aware DMI from any metamodel.Model, with per-construct
// create/update/delete operations validated against the model's connectors.
package slim

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metamodel"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trim"
)

// Store couples a TRIM triple manager with the models whose instances it
// holds. A single store may hold several models' data at once (the paper's
// flexibility requirement).
type Store struct {
	mu     sync.Mutex
	trim   *trim.Manager
	models map[string]*metamodel.Model
	// seq assigns instance ids per construct label.
	seq map[string]int
}

// NewStore returns a store over a fresh TRIM manager.
func NewStore() *Store {
	return NewStoreOver(trim.NewManager())
}

// NewStoreOver returns a store over an existing TRIM manager (e.g. one
// loaded from an XML file).
func NewStoreOver(tm *trim.Manager) *Store {
	return &Store{
		trim:   tm,
		models: make(map[string]*metamodel.Model),
		seq:    make(map[string]int),
	}
}

// Trim exposes the underlying triple manager for queries, views, and
// persistence.
func (s *Store) Trim() *trim.Manager { return s.trim }

// RegisterModel adds a model to the store and writes its definition into
// the triple representation, so the store is self-describing ("explicitly
// representing and storing model, schema, and instance", §5).
func (s *Store) RegisterModel(m *metamodel.Model) (err error) {
	sp := obs.Trace("store.register_model", m.ID)
	defer func() { sp.FinishErr(err) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.models[m.ID]; ok {
		return fmt.Errorf("slim: model %q already registered", m.ID)
	}
	if err := metamodel.Encode(m, s.trim); err != nil {
		return err
	}
	s.models[m.ID] = m
	return nil
}

// Model retrieves a registered model.
func (s *Store) Model(id string) (*metamodel.Model, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[id]
	return m, ok
}

// NewID mints a fresh instance IRI for the construct, of the form
// inst:<Label>-NNNNNN. Uniqueness against existing store contents is
// guaranteed by probing.
func (s *Store) NewID(constructID string) rdf.Term {
	label := constructID
	if i := strings.LastIndexAny(constructID, "#/"); i >= 0 {
		label = constructID[i+1:]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.seq[label]++
		iri := rdf.IRI(fmt.Sprintf("%s%s-%06d", rdf.NSInst, label, s.seq[label]))
		if s.trim.Count(rdf.P(iri, rdf.Zero, rdf.Zero)) == 0 {
			return iri
		}
	}
}

// Check runs conformance of the store's instance data against the named
// registered model (schema-later validation on demand).
func (s *Store) Check(modelID string) ([]metamodel.Violation, error) {
	s.mu.Lock()
	m, ok := s.models[modelID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("slim: model %q not registered", modelID)
	}
	return metamodel.NewChecker(m, s.trim).Check(), nil
}

// SaveFile persists the entire store (models, schema, instances, marks —
// everything in the TRIM manager) to an XML file.
func (s *Store) SaveFile(path string) (err error) {
	sp := obs.Trace("store.save", path)
	defer func() { sp.FinishErr(err) }()
	return s.trim.SaveFile(path)
}

// LoadFile replaces the TRIM contents from an XML file and re-decodes all
// registered models from the loaded triples, keeping the in-memory model
// registry consistent with the store.
func (s *Store) LoadFile(path string) (err error) {
	sp := obs.Trace("store.load", path)
	defer func() { sp.FinishErr(err) }()
	if err := s.trim.LoadFile(path); err != nil {
		return err
	}
	return s.reloadModels()
}

// SaveBackend persists the entire store through a pluggable durability
// backend (docs/ROBUSTNESS.md "Durability backends"): the XML snapshot,
// the append-only WAL, or JSON Lines, selected by whoever opened the
// backend over this store's TRIM manager.
func (s *Store) SaveBackend(b trim.Backend) (err error) {
	sp := obs.Trace("store.save", b.Path())
	defer func() { sp.FinishErr(err) }()
	return b.Save()
}

// LoadBackend recovers the store through a pluggable durability backend
// and re-decodes all registered models from the recovered triples, the
// backend-polymorphic counterpart of LoadFile.
func (s *Store) LoadBackend(b trim.Backend) (err error) {
	sp := obs.Trace("store.load", b.Path())
	defer func() { sp.FinishErr(err) }()
	if err := b.Load(); err != nil {
		return err
	}
	return s.reloadModels()
}

// reloadModels rebuilds the in-memory model registry from the triples
// currently in the TRIM manager, after a load replaced them.
func (s *Store) reloadModels() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = make(map[string]*metamodel.Model)
	for _, id := range metamodel.ListModels(s.trim) {
		m, err := metamodel.Decode(s.trim, id)
		if err != nil {
			return fmt.Errorf("slim: reloading model %s: %w", id, err)
		}
		s.models[id] = m
	}
	// Reset sequence counters; NewID probes for collisions so starting
	// over is safe, just slower for the first few mints.
	s.seq = make(map[string]int)
	return nil
}
