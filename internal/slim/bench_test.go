package slim

import (
	"testing"

	"repro/internal/metamodel"
	"repro/internal/rdf"
)

func benchDMI(b *testing.B) *DMI {
	b.Helper()
	d, err := GenerateDMI(NewStore(), metamodel.BundleScrapModel())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDMICreate(b *testing.B) {
	d := benchDMI(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Create(metamodel.ConstructBundle, map[string]any{
			metamodel.ConnBundleName: "b",
			metamodel.ConnBundlePos:  "1,2",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDMIGet(b *testing.B) {
	d := benchDMI(b)
	obj, err := d.Create(metamodel.ConstructBundle, map[string]any{
		metamodel.ConnBundleName:   "b",
		metamodel.ConnBundlePos:    "1,2",
		metamodel.ConnBundleWidth:  100,
		metamodel.ConnBundleHeight: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(obj.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDMISet(b *testing.B) {
	d := benchDMI(b)
	obj, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Set(obj.ID, metamodel.ConnBundleName, "renamed"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstancesOf(b *testing.B) {
	d := benchDMI(b)
	for i := 0; i < 500; i++ {
		if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, err := d.InstancesOf(metamodel.ConstructBundle)
		if err != nil || len(objs) != 500 {
			b.Fatal(err, len(objs))
		}
	}
}

func BenchmarkNewID(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.NewID(metamodel.ConstructBundle) == rdf.Zero {
			b.Fatal("zero id")
		}
	}
}
