package slim

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metamodel"
	"repro/internal/rdf"
)

func newBundleScrapDMI(t *testing.T) *DMI {
	t.Helper()
	store := NewStore()
	d, err := GenerateDMI(store, metamodel.BundleScrapModel())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateDMIRegistersModel(t *testing.T) {
	store := NewStore()
	d, err := GenerateDMI(store, metamodel.BundleScrapModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Model(metamodel.BundleScrapModelID); !ok {
		t.Fatal("model not registered")
	}
	if d.Model().ID != metamodel.BundleScrapModelID {
		t.Fatal("DMI model mismatch")
	}
	// Generating a second DMI over the same registered model is fine.
	if _, err := GenerateDMI(store, d.Model()); err != nil {
		t.Fatal(err)
	}
	if d.Store() != store {
		t.Fatal("store accessor broken")
	}
}

func TestCreateAndGet(t *testing.T) {
	d := newBundleScrapDMI(t)
	b, err := d.Create(metamodel.ConstructBundle, map[string]any{
		metamodel.ConnBundleName:   "John Smith",
		metamodel.ConnBundlePos:    "10,20",
		metamodel.ConnBundleWidth:  300,
		metamodel.ConnBundleHeight: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Construct != metamodel.ConstructBundle {
		t.Errorf("construct = %q", b.Construct)
	}
	if !strings.HasPrefix(b.ID.Value(), rdf.NSInst+"Bundle-") {
		t.Errorf("id = %q", b.ID.Value())
	}
	if b.GetString(metamodel.ConnBundleName) != "John Smith" {
		t.Errorf("name = %q", b.GetString(metamodel.ConnBundleName))
	}
	if b.GetInt(metamodel.ConnBundleWidth) != 300 {
		t.Errorf("width = %d", b.GetInt(metamodel.ConnBundleWidth))
	}
	// Get returns a fresh snapshot.
	again, err := d.Get(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.GetString(metamodel.ConnBundleName) != "John Smith" {
		t.Error("snapshot wrong")
	}
}

func TestCreateValidation(t *testing.T) {
	d := newBundleScrapDMI(t)
	// Unknown construct.
	if _, err := d.Create("http://nope", nil); err == nil {
		t.Error("unknown construct accepted")
	}
	// Unknown connector.
	if _, err := d.Create(metamodel.ConstructBundle, map[string]any{"http://nope": "x"}); err == nil {
		t.Error("unknown connector accepted")
	}
	// Wrong domain: padName on a Bundle.
	if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnPadName: "x"}); err == nil {
		t.Error("wrong-domain connector accepted")
	}
	// Wrong range kind: a string where an integer Dimension is required.
	if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleWidth: "wide"}); err == nil {
		t.Error("wrong-datatype value accepted")
	}
	// Resource where a literal is required.
	if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: rdf.IRI("http://x")}); err == nil {
		t.Error("resource for literal connector accepted")
	}
	// Literal where a reference is required.
	if _, err := d.Create(metamodel.ConstructSlimPad, map[string]any{metamodel.ConnRootBundle: "not-a-ref"}); err == nil {
		t.Error("literal for reference connector accepted")
	}
	// Unconvertible value.
	if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: struct{}{}}); err == nil {
		t.Error("unconvertible value accepted")
	}
	// Failed creates leave nothing behind.
	if n := d.Trim().Count(rdf.P(rdf.Zero, rdf.RDFType, rdf.IRI(metamodel.ConstructBundle))); n != 0 {
		t.Errorf("failed creates leaked %d instances", n)
	}
}

func TestSetReplacesValue(t *testing.T) {
	d := newBundleScrapDMI(t)
	b, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "old"})
	if err := d.Set(b.ID, metamodel.ConnBundleName, "new"); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get(b.ID)
	if got.GetString(metamodel.ConnBundleName) != "new" {
		t.Fatalf("name = %q", got.GetString(metamodel.ConnBundleName))
	}
	if len(got.All(metamodel.ConnBundleName)) != 1 {
		t.Fatal("Set left multiple values")
	}
	// Set on an absent instance fails.
	if err := d.Set(rdf.IRI("http://ghost"), metamodel.ConnBundleName, "x"); err == nil {
		t.Fatal("Set on ghost instance succeeded")
	}
	// Set validates like Create.
	if err := d.Set(b.ID, metamodel.ConnBundleWidth, "wide"); err == nil {
		t.Fatal("bad datatype accepted by Set")
	}
}

func TestAddRespectsCardinality(t *testing.T) {
	d := newBundleScrapDMI(t)
	pad, _ := d.Create(metamodel.ConstructSlimPad, map[string]any{metamodel.ConnPadName: "Rounds"})
	b1, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b1"})
	b2, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b2"})
	// rootBundle has MaxCard 1.
	if err := d.Add(pad.ID, metamodel.ConnRootBundle, b1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(pad.ID, metamodel.ConnRootBundle, b2); err == nil {
		t.Fatal("second rootBundle accepted despite MaxCard 1")
	}
	// nestedBundle is unbounded.
	for i := 0; i < 5; i++ {
		nb, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "n"})
		if err := d.Add(b1.ID, metamodel.ConnNestedBundle, nb); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := d.Get(b1.ID)
	if len(got.All(metamodel.ConnNestedBundle)) != 5 {
		t.Fatalf("nested = %d", len(got.All(metamodel.ConnNestedBundle)))
	}
}

func TestUnset(t *testing.T) {
	d := newBundleScrapDMI(t)
	b, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "x"})
	nb, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "y"})
	d.Add(b.ID, metamodel.ConnNestedBundle, nb)
	if err := d.Unset(b.ID, metamodel.ConnNestedBundle, nb); err != nil {
		t.Fatal(err)
	}
	if err := d.Unset(b.ID, metamodel.ConnNestedBundle, nb); err == nil {
		t.Fatal("Unset of absent value succeeded")
	}
}

func TestDeleteRemovesReferences(t *testing.T) {
	d := newBundleScrapDMI(t)
	parent, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "parent"})
	child, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "child"})
	d.Add(parent.ID, metamodel.ConnNestedBundle, child)
	if err := d.Delete(child.ID, false); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get(parent.ID)
	if len(got.All(metamodel.ConnNestedBundle)) != 0 {
		t.Fatal("dangling reference after Delete")
	}
	if _, err := d.Get(child.ID); err == nil {
		t.Fatal("deleted instance still readable")
	}
	if err := d.Delete(child.ID, false); err == nil {
		t.Fatal("double Delete succeeded")
	}
}

func TestDeleteCascade(t *testing.T) {
	d := newBundleScrapDMI(t)
	parent, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "parent"})
	child, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "child"})
	grandchild, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "grandchild"})
	shared, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "shared"})
	other, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "other"})
	d.Add(parent.ID, metamodel.ConnNestedBundle, child)
	d.Add(child.ID, metamodel.ConnNestedBundle, grandchild)
	d.Add(parent.ID, metamodel.ConnNestedBundle, shared)
	d.Add(other.ID, metamodel.ConnNestedBundle, shared)

	if err := d.Delete(parent.ID, true); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []rdf.Term{parent.ID, child.ID, grandchild.ID} {
		if _, err := d.Get(gone); err == nil {
			t.Errorf("%s survived cascade", gone.Value())
		}
	}
	// shared is still referenced by other, so it survives.
	if _, err := d.Get(shared.ID); err != nil {
		t.Error("shared child deleted despite external reference")
	}
	if _, err := d.Get(other.ID); err != nil {
		t.Error("unrelated instance deleted")
	}
}

func TestInstancesOf(t *testing.T) {
	d := newBundleScrapDMI(t)
	for i := 0; i < 3; i++ {
		if _, err := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	d.Create(metamodel.ConstructScrap, map[string]any{metamodel.ConnScrapName: "s"})
	bundles, err := d.InstancesOf(metamodel.ConstructBundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 3 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	if _, err := d.InstancesOf("http://nope"); err == nil {
		t.Fatal("unknown construct accepted")
	}
}

func TestViewFollowsContainment(t *testing.T) {
	d := newBundleScrapDMI(t)
	root, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "root"})
	child, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "child"})
	d.Add(root.ID, metamodel.ConnNestedBundle, child)
	stray, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "stray"})
	view := d.View(root.ID)
	found := false
	strayFound := false
	view.Each(func(tr rdf.Triple) bool {
		if tr.Subject == child.ID {
			found = true
		}
		if tr.Subject == stray.ID {
			strayFound = true
		}
		return true
	})
	if !found {
		t.Error("view missing nested bundle")
	}
	if strayFound {
		t.Error("view includes unrelated instance")
	}
}

func TestStoreCheckConformance(t *testing.T) {
	d := newBundleScrapDMI(t)
	// A bundle missing its mandatory name/pos/dims.
	d.Create(metamodel.ConstructBundle, nil)
	vios, err := d.Store().Check(metamodel.BundleScrapModelID)
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) == 0 {
		t.Fatal("incomplete bundle passed conformance")
	}
	if _, err := d.Store().Check("http://nope"); err == nil {
		t.Fatal("check of unregistered model succeeded")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	d := newBundleScrapDMI(t)
	b, _ := d.Create(metamodel.ConstructBundle, map[string]any{
		metamodel.ConnBundleName: "persisted",
	})
	path := filepath.Join(t.TempDir(), "pad.xml")
	if err := d.Store().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	// Model is rehydrated from the triples themselves.
	m, ok := fresh.Model(metamodel.BundleScrapModelID)
	if !ok {
		t.Fatal("model not rehydrated from file")
	}
	d2, err := GenerateDMI(fresh, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetString(metamodel.ConnBundleName) != "persisted" {
		t.Fatalf("name = %q", got.GetString(metamodel.ConnBundleName))
	}
	// New ids don't collide with loaded instances.
	nb, err := d2.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if nb.ID == b.ID {
		t.Fatal("id collision after load")
	}
}

func TestNewIDUnique(t *testing.T) {
	s := NewStore()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := s.NewID(metamodel.ConstructBundle).Value()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRegisterModelTwice(t *testing.T) {
	s := NewStore()
	if err := s.RegisterModel(metamodel.BundleScrapModel()); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterModel(metamodel.BundleScrapModel()); err == nil {
		t.Fatal("double registration succeeded")
	}
}

func TestTwoModelsOneStore(t *testing.T) {
	s := NewStore()
	bs, err := GenerateDMI(s, metamodel.BundleScrapModel())
	if err != nil {
		t.Fatal(err)
	}
	ann, err := GenerateDMI(s, metamodel.AnnotationModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ann.Create(metamodel.ConstructAnnotation, map[string]any{metamodel.ConnAnnBody: "note"}); err != nil {
		t.Fatal(err)
	}
	// Each DMI only sees its own model's constructs.
	if _, err := bs.Create(metamodel.ConstructAnnotation, nil); err == nil {
		t.Fatal("Bundle-Scrap DMI created an Annotation")
	}
	bundles, _ := bs.InstancesOf(metamodel.ConstructBundle)
	anns, _ := ann.InstancesOf(metamodel.ConstructAnnotation)
	if len(bundles) != 1 || len(anns) != 1 {
		t.Fatalf("instances = %d bundles, %d annotations", len(bundles), len(anns))
	}
}

func TestObjectAccessors(t *testing.T) {
	d := newBundleScrapDMI(t)
	b, _ := d.Create(metamodel.ConstructBundle, map[string]any{
		metamodel.ConnBundleName:  "b",
		metamodel.ConnBundleWidth: 120,
	})
	if _, err := b.Get("http://absent"); err == nil {
		t.Error("Get absent succeeded")
	}
	if b.GetString("http://absent") != "" {
		t.Error("GetString absent nonzero")
	}
	if b.GetInt("http://absent") != 0 {
		t.Error("GetInt absent nonzero")
	}
	if b.GetInt(metamodel.ConnBundleName) != 0 {
		t.Error("GetInt of string value nonzero")
	}
	conns := b.Connectors()
	if len(conns) != 2 {
		t.Errorf("Connectors = %v", conns)
	}
	if b.String() == "" {
		t.Error("Object.String empty")
	}
	// Multi-valued Get errors.
	n1, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "n1"})
	n2, _ := d.Create(metamodel.ConstructBundle, map[string]any{metamodel.ConnBundleName: "n2"})
	d.Add(b.ID, metamodel.ConnNestedBundle, n1)
	d.Add(b.ID, metamodel.ConnNestedBundle, n2)
	fresh, _ := d.Get(b.ID)
	if _, err := fresh.Get(metamodel.ConnNestedBundle); err == nil {
		t.Error("Get of multi-valued connector succeeded")
	}
}

func TestValueConversions(t *testing.T) {
	cases := []struct {
		in   any
		want rdf.Term
	}{
		{"s", rdf.String("s")},
		{42, rdf.Integer(42)},
		{int64(43), rdf.Integer(43)},
		{1.5, rdf.Float(1.5)},
		{true, rdf.Bool(true)},
		{rdf.IRI("http://x"), rdf.IRI("http://x")},
	}
	for _, c := range cases {
		got, err := Value(c.in)
		if err != nil || got != c.want {
			t.Errorf("Value(%v) = %v, %v", c.in, got, err)
		}
	}
	if _, err := Value(nil); err == nil {
		t.Error("Value(nil) succeeded")
	}
	if _, err := Value((*Object)(nil)); err == nil {
		t.Error("Value(nil *Object) succeeded")
	}
}
