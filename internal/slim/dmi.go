package slim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/metamodel"
	"repro/internal/rdf"
	"repro/internal/trim"
)

// DMI is a model-generated Data Manipulation Interface: the only sanctioned
// write path to a model's instances in the store (Fig. 9). Every operation
// validates against the model (connector existence, domain, range kind,
// upper cardinality) and materializes triples through one atomic batch, so
// readers never observe half-written instances.
//
// GenerateDMI is the realization of §4.4's "automatically generating
// specialized DMIs from data models": for the Bundle-Scrap model it yields
// the operations of Fig. 10 (Create_Bundle, Update_padName, Delete_Scrap,
// save, load) in generic form. Models may come from Go code, from triples
// (metamodel.Decode), or from SLIM-ML text (metamodel.ParseModelSpec) — the
// "high-level specification" path of ref [24].
type DMI struct {
	store *Store
	model *metamodel.Model
}

// GenerateDMI derives a DMI for the model. The model must already be
// registered with the store (or is registered on the spot).
func GenerateDMI(store *Store, model *metamodel.Model) (*DMI, error) {
	if _, ok := store.Model(model.ID); !ok {
		if err := store.RegisterModel(model); err != nil {
			return nil, err
		}
	}
	return &DMI{store: store, model: model}, nil
}

// Model returns the model this DMI manipulates.
func (d *DMI) Model() *metamodel.Model { return d.model }

// Store returns the underlying store.
//
// slimvet:noobs accessor — "Store" is the noun here, not the verb; the
// mutating DMI ops record via dmiOp.done.
func (d *DMI) Store() *Store { return d.store }

// Value converts a Go value into an rdf.Term for property assignment:
// string, int, int64, float64, bool, rdf.Term, or *Object (reference).
func Value(v any) (rdf.Term, error) {
	switch x := v.(type) {
	case string:
		return rdf.String(x), nil
	case int:
		return rdf.Integer(int64(x)), nil
	case int64:
		return rdf.Integer(x), nil
	case float64:
		return rdf.Float(x), nil
	case bool:
		return rdf.Bool(x), nil
	case rdf.Term:
		return x, nil
	case *Object:
		if x == nil {
			return rdf.Zero, fmt.Errorf("slim: nil object reference")
		}
		return x.ID, nil
	default:
		return rdf.Zero, fmt.Errorf("slim: cannot convert %T to a property value", v)
	}
}

// validateAssignment checks connector membership, domain, and range kind.
func (d *DMI) validateAssignment(constructID, connectorID string, value rdf.Term) error {
	conn, ok := d.model.Connector(connectorID)
	if !ok || conn.Kind != metamodel.KindConnector {
		return fmt.Errorf("slim: %s is not a connector of model %s", connectorID, d.model.ID)
	}
	if !d.model.IsA(constructID, conn.From) {
		return fmt.Errorf("slim: connector %s starts at %s, not %s", conn.Label, conn.From, constructID)
	}
	to, _ := d.model.Construct(conn.To)
	switch to.Kind {
	case metamodel.KindLiteralConstruct:
		if !value.IsLiteral() {
			return fmt.Errorf("slim: %s requires a literal value, got %v", conn.Label, value)
		}
		if to.Datatype != "" && value.Datatype() != to.Datatype {
			return fmt.Errorf("slim: %s requires datatype %s, got %s", conn.Label, to.Datatype, value.Datatype())
		}
	default:
		if !value.IsResource() {
			return fmt.Errorf("slim: %s requires an instance reference, got %v", conn.Label, value)
		}
	}
	return nil
}

// Create makes a new instance of the construct and assigns the given
// single-valued properties. Props keys are connector IRIs; values pass
// through Value. The whole creation is one atomic batch.
func (d *DMI) Create(constructID string, props map[string]any) (*Object, error) {
	return d.CreateCtx(nil, constructID, props)
}

// CreateCtx is Create under the caller's trace: the op span and the TRIM
// work it fans out into all join the context's trace tree.
func (d *DMI) CreateCtx(ctx context.Context, constructID string, props map[string]any) (obj *Object, err error) {
	ctx, op := startOpCtx(ctx, "create", constructID)
	touched := 0
	defer func() { op.done(touched, err) }()
	c, ok := d.model.Construct(constructID)
	if !ok {
		return nil, fmt.Errorf("slim: %s is not a construct of model %s", constructID, d.model.ID)
	}
	id := d.store.NewID(constructID)
	b := d.store.trim.NewBatch()
	if err := b.Create(rdf.T(id, rdf.RDFType, rdf.IRI(constructID))); err != nil {
		return nil, err
	}
	// Deterministic assignment order for reproducible error messages.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, connID := range keys {
		term, err := Value(props[connID])
		if err != nil {
			return nil, fmt.Errorf("slim: creating %s: %s: %w", c.Label, connID, err)
		}
		if err := d.validateAssignment(constructID, connID, term); err != nil {
			return nil, err
		}
		if err := b.Create(rdf.T(id, rdf.IRI(connID), term)); err != nil {
			return nil, err
		}
	}
	touched = b.Len()
	if err := b.ApplyCtx(ctx); err != nil {
		return nil, err
	}
	return d.GetCtx(ctx, id)
}

// Get snapshots an instance into a read-only Object.
func (d *DMI) Get(id rdf.Term) (*Object, error) {
	return d.GetCtx(nil, id)
}

// GetCtx is Get under the caller's trace.
func (d *DMI) GetCtx(ctx context.Context, id rdf.Term) (obj *Object, err error) {
	ctx, op := startOpCtx(ctx, "get", id.Value())
	triples := d.store.trim.SelectCtx(ctx, rdf.P(id, rdf.Zero, rdf.Zero))
	defer func() { op.done(len(triples), err) }()
	if len(triples) == 0 {
		return nil, fmt.Errorf("slim: no instance %s", id.Value())
	}
	construct := ""
	props := make(map[string][]rdf.Term)
	for _, t := range triples {
		if t.Predicate == rdf.RDFType {
			if _, ok := d.model.Construct(t.Object.Value()); ok {
				construct = t.Object.Value()
			}
			continue
		}
		p := t.Predicate.Value()
		props[p] = append(props[p], t.Object)
	}
	if construct == "" {
		return nil, fmt.Errorf("slim: %s is not an instance of model %s", id.Value(), d.model.ID)
	}
	return newObject(id, construct, props), nil
}

// Set replaces all values of the connector on the instance with one value
// (the Update_ operations of Fig. 10).
func (d *DMI) Set(id rdf.Term, connectorID string, value any) error {
	return d.SetCtx(nil, id, connectorID, value)
}

// SetCtx is Set under the caller's trace; the inner Get and the batch
// apply appear as child spans — the interpretation overhead §6 prices,
// made visible per request.
func (d *DMI) SetCtx(ctx context.Context, id rdf.Term, connectorID string, value any) (err error) {
	ctx, op := startOpCtx(ctx, "set", connectorID)
	defer func() { op.done(2, err) }()
	obj, err := d.GetCtx(ctx, id)
	if err != nil {
		return err
	}
	term, err := Value(value)
	if err != nil {
		return err
	}
	if err := d.validateAssignment(obj.Construct, connectorID, term); err != nil {
		return err
	}
	b := d.store.trim.NewBatch()
	if err := b.RemoveMatching(rdf.P(id, rdf.IRI(connectorID), rdf.Zero)); err != nil {
		return err
	}
	if err := b.Create(rdf.T(id, rdf.IRI(connectorID), term)); err != nil {
		return err
	}
	return b.ApplyCtx(ctx)
}

// Add appends a value to a multi-valued connector (the addNestedBundle
// style operations of Fig. 10). It enforces the connector's upper
// cardinality.
func (d *DMI) Add(id rdf.Term, connectorID string, value any) error {
	return d.AddCtx(nil, id, connectorID, value)
}

// AddCtx is Add under the caller's trace.
func (d *DMI) AddCtx(ctx context.Context, id rdf.Term, connectorID string, value any) (err error) {
	ctx, op := startOpCtx(ctx, "add", connectorID)
	defer func() { op.done(1, err) }()
	obj, err := d.GetCtx(ctx, id)
	if err != nil {
		return err
	}
	term, err := Value(value)
	if err != nil {
		return err
	}
	if err := d.validateAssignment(obj.Construct, connectorID, term); err != nil {
		return err
	}
	conn, _ := d.model.Connector(connectorID)
	if conn.MaxCard != metamodel.Unbounded {
		n := d.store.trim.Count(rdf.P(id, rdf.IRI(connectorID), rdf.Zero))
		if n >= conn.MaxCard {
			return fmt.Errorf("slim: %s already has %d values of %s (max %d)", id.Value(), n, conn.Label, conn.MaxCard)
		}
	}
	_, err = d.store.trim.CreateCtx(ctx, rdf.T(id, rdf.IRI(connectorID), term))
	return err
}

// Unset removes a specific value from a connector.
func (d *DMI) Unset(id rdf.Term, connectorID string, value any) error {
	return d.UnsetCtx(nil, id, connectorID, value)
}

// UnsetCtx is Unset under the caller's trace.
func (d *DMI) UnsetCtx(ctx context.Context, id rdf.Term, connectorID string, value any) (err error) {
	ctx, op := startOpCtx(ctx, "unset", connectorID)
	defer func() { op.done(1, err) }()
	term, err := Value(value)
	if err != nil {
		return err
	}
	if !d.store.trim.RemoveCtx(ctx, rdf.T(id, rdf.IRI(connectorID), term)) {
		return fmt.Errorf("slim: %s has no value %v for %s", id.Value(), term, connectorID)
	}
	return nil
}

// Delete removes an instance: all its outgoing triples and all incoming
// references to it. With cascade, instances reachable from it through
// model connectors that no other instance references are deleted too (the
// containment semantics Delete_Bundle needs).
func (d *DMI) Delete(id rdf.Term, cascade bool) error {
	return d.DeleteCtx(nil, id, cascade)
}

// DeleteCtx is Delete under the caller's trace; cascaded deletes become
// child spans of this one, so the containment fan-out is visible as a
// subtree.
func (d *DMI) DeleteCtx(ctx context.Context, id rdf.Term, cascade bool) (err error) {
	ctx, op := startOpCtx(ctx, "delete", id.Value())
	before := d.store.trim.Len()
	// A cascading delete's triple count includes the nested deletes, which
	// also record their own ops — the nesting is visible in the trace ring.
	defer func() { op.done(before-d.store.trim.Len(), err) }()
	if _, err := d.GetCtx(ctx, id); err != nil {
		return err
	}
	children := map[rdf.Term]bool{}
	if cascade {
		for _, t := range d.store.trim.SelectCtx(ctx, rdf.P(id, rdf.Zero, rdf.Zero)) {
			if t.Predicate == rdf.RDFType || !t.Object.IsResource() {
				continue
			}
			if _, ok := d.model.Connector(t.Predicate.Value()); ok {
				children[t.Object] = true
			}
		}
	}
	b := d.store.trim.NewBatch()
	if err := b.RemoveMatching(rdf.P(id, rdf.Zero, rdf.Zero)); err != nil {
		return err
	}
	if err := b.RemoveMatching(rdf.P(rdf.Zero, rdf.Zero, id)); err != nil {
		return err
	}
	if err := b.ApplyCtx(ctx); err != nil {
		return err
	}
	if cascade {
		for child := range children {
			// Another instance may still reference the child.
			if d.store.trim.Count(rdf.P(rdf.Zero, rdf.Zero, child)) > 0 {
				continue
			}
			if _, err := d.GetCtx(ctx, child); err != nil {
				continue // not an instance of this model
			}
			if err := d.DeleteCtx(ctx, child, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// InstancesOf lists all instances of the construct (including instances of
// its specializations), sorted by IRI.
func (d *DMI) InstancesOf(constructID string) ([]*Object, error) {
	return d.InstancesOfCtx(nil, constructID)
}

// InstancesOfCtx is InstancesOf under the caller's trace; every per-
// instance Get is a child span.
func (d *DMI) InstancesOfCtx(ctx context.Context, constructID string) (out []*Object, err error) {
	ctx, op := startOpCtx(ctx, "instancesof", constructID)
	defer func() { op.done(0, err) }()
	if _, ok := d.model.Construct(constructID); !ok {
		return nil, fmt.Errorf("slim: %s is not a construct of model %s", constructID, d.model.ID)
	}
	ids := map[rdf.Term]bool{}
	for _, s := range d.store.trim.Subjects(rdf.RDFType, rdf.IRI(constructID)) {
		ids[s] = true
	}
	for _, sub := range d.model.Constructs() {
		if sub.ID != constructID && d.model.IsA(sub.ID, constructID) {
			for _, s := range d.store.trim.Subjects(rdf.RDFType, rdf.IRI(sub.ID)) {
				ids[s] = true
			}
		}
	}
	sorted := make([]rdf.Term, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	out = make([]*Object, 0, len(sorted))
	for _, id := range sorted {
		obj, err := d.GetCtx(ctx, id)
		if err != nil {
			return nil, err
		}
		out = append(out, obj)
	}
	return out, nil
}

// View returns the reachability view rooted at the instance (§4.4): all
// triples representing the instance and everything nested inside it.
func (d *DMI) View(id rdf.Term) *rdf.Graph {
	return d.ViewCtx(nil, id)
}

// ViewCtx is View under the caller's trace.
func (d *DMI) ViewCtx(ctx context.Context, id rdf.Term) *rdf.Graph {
	ctx, op := startOpCtx(ctx, "view", id.Value())
	g := d.store.trim.ViewCtx(ctx, id)
	op.done(g.Len(), nil)
	return g
}

// Trim exposes the store's triple manager, for read-only queries by the
// superimposed application.
func (d *DMI) Trim() *trim.Manager { return d.store.trim }
