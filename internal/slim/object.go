package slim

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Object is the read-only application-data view of one instance (Fig. 9:
// "read-only objects that represent the ... model"). A DMI hands Objects to
// the superimposed application; all mutation goes back through the DMI,
// which keeps the triple representation and the objects consistent.
type Object struct {
	// ID is the instance IRI.
	ID rdf.Term
	// Construct is the IRI of the instance's construct (its type).
	Construct string
	// props maps connector IRI -> values in deterministic order.
	props map[string][]rdf.Term
}

// newObject builds an object snapshot.
func newObject(id rdf.Term, construct string, props map[string][]rdf.Term) *Object {
	return &Object{ID: id, Construct: construct, props: props}
}

// Get returns the single value of the connector. It errors when the
// property is absent or multi-valued.
func (o *Object) Get(connectorID string) (rdf.Term, error) {
	vs := o.props[connectorID]
	switch len(vs) {
	case 0:
		return rdf.Zero, fmt.Errorf("slim: %s has no value for %s", o.ID.Value(), connectorID)
	case 1:
		return vs[0], nil
	default:
		return rdf.Zero, fmt.Errorf("slim: %s has %d values for %s, want 1", o.ID.Value(), len(vs), connectorID)
	}
}

// GetString returns the single value as its lexical string, or "" when the
// property is absent.
func (o *Object) GetString(connectorID string) string {
	v, err := o.Get(connectorID)
	if err != nil {
		return ""
	}
	return v.Value()
}

// GetInt returns the single integer value, or 0 when absent or non-integer.
func (o *Object) GetInt(connectorID string) int64 {
	v, err := o.Get(connectorID)
	if err != nil {
		return 0
	}
	n, _ := v.Int()
	return n
}

// All returns every value of the connector, in deterministic order.
func (o *Object) All(connectorID string) []rdf.Term {
	return append([]rdf.Term(nil), o.props[connectorID]...)
}

// Connectors returns the connector IRIs that have values, sorted.
func (o *Object) Connectors() []string {
	out := make([]string, 0, len(o.props))
	for k := range o.props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the object for diagnostics.
func (o *Object) String() string {
	return fmt.Sprintf("%s <%s>", o.ID.Value(), o.Construct)
}
