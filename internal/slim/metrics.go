package slim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// DMI instrumentation directly quantifies §6's "cost of interpreting
// manipulations on SLIM Store data": every DMI operation records its
// end-to-end latency (slim.dmi.<op>.ns — validation, triple staging, and
// TRIM time included), the number of triples it touched
// (slim.dmi.triples.touched and the per-op slim.dmi.triples_per_op
// distribution), and success/error counts. Each operation also leaves a
// span in the obs ring buffer, so slimpad -trace shows the store's recent
// manipulation history.
//
// Nested reads count too: a DMI Set re-Gets the instance to learn its
// construct, and that inner Get records itself — which is exactly the
// interpretation overhead the paper prices.
var (
	mTriplesTouched = obs.C(obs.NameSlimTriplesTouched)
	mTriplesPerOp   = obs.HSize(obs.NameSlimTriplesPerOp)
)

// dmiOp is an in-flight DMI operation; start with startOpCtx, finish with
// done. The op string is the metric/infix ("create", "get", ...).
type dmiOp struct {
	op    string
	start time.Time
	span  *obs.Span
}

// startOpCtx opens a DMI op span as a child of the caller's trace (or a
// new root for plain, context-free entry points, which pass nil) and
// returns the context to thread into the TRIM layer, so the store's
// selects and batch applies appear under this op in the trace tree.
func startOpCtx(ctx context.Context, op, detail string) (context.Context, dmiOp) {
	ctx, span := obs.StartCtx(ctx, "dmi."+op, detail)
	return ctx, dmiOp{op: op, start: time.Now(), span: span}
}

// done records the operation. triples is the number of triples the op
// touched (read or wrote); pass 0 when the op failed before touching any.
func (o dmiOp) done(triples int, err error) {
	obs.H(fmt.Sprintf(obs.FmtSlimDmiNS, o.op)).ObserveSince(o.start)
	obs.C(fmt.Sprintf(obs.FmtSlimDmiTotal, o.op)).Inc()
	if err != nil {
		obs.C(fmt.Sprintf(obs.FmtSlimDmiErrors, o.op)).Inc()
		obs.Log().Warn("dmi op failed", "op", o.op, "err", err)
	} else if triples > 0 {
		mTriplesTouched.Add(int64(triples))
		mTriplesPerOp.Observe(int64(triples))
	}
	o.span.FinishErr(err)
}
