package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/slimpad"
	"repro/internal/trim"
)

// TestScalePadIntegrity builds a pad far larger than any realistic
// worksheet (the §6 note that "some data sets are quite large"), persists
// it, reloads it, and verifies structural integrity end to end. Run with
// -short to skip.
func TestScalePadIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const bundles = 100
	const scrapsPerBundle = 50 // 5,000 scraps total

	d, err := slimpad.NewDMI()
	if err != nil {
		t.Fatal(err)
	}
	pad, _ := d.CreateSlimPad("scale")
	root, _ := d.CreateBundle("root", slimpad.Coordinate{}, 10000, 10000)
	if err := d.SetRootBundle(pad.ID(), root.ID()); err != nil {
		t.Fatal(err)
	}
	for bi := 0; bi < bundles; bi++ {
		b, err := d.CreateBundle(fmt.Sprintf("bundle %d", bi), slimpad.Coordinate{X: bi, Y: bi}, 100, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddNestedBundle(root.ID(), b.ID()); err != nil {
			t.Fatal(err)
		}
		for si := 0; si < scrapsPerBundle; si++ {
			s, err := d.CreateScrap(fmt.Sprintf("scrap %d.%d", bi, si), slimpad.Coordinate{X: si, Y: si}, fmt.Sprintf("mark-%03d-%03d", bi, si))
			if err != nil {
				t.Fatal(err)
			}
			if err := d.AddScrapToBundle(b.ID(), s.ID()); err != nil {
				t.Fatal(err)
			}
		}
	}

	path := filepath.Join(t.TempDir(), "scale.xml")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pad file: %d triples, %.1f MB", d.Store().Trim().Len(), float64(info.Size())/1e6)

	d2, err := slimpad.NewDMI()
	if err != nil {
		t.Fatal(err)
	}
	pads, err := d2.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 {
		t.Fatalf("pads = %d", len(pads))
	}
	rootID, ok := pads[0].RootBundle()
	if !ok {
		t.Fatal("root lost")
	}
	rb, err := d2.Bundle(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.NestedBundles()) != bundles {
		t.Fatalf("nested = %d, want %d", len(rb.NestedBundles()), bundles)
	}
	// Spot-check structure and counts via queries.
	found, err := d2.FindScraps("scrap 42.7")
	if err != nil || len(found) != 1 {
		t.Fatalf("FindScraps = %d, %v", len(found), err)
	}
	if found[0].MarkHandles()[0].MarkID() != "mark-042-007" {
		t.Fatalf("mark id = %q", found[0].MarkHandles()[0].MarkID())
	}
	all, err := d2.FindScraps("scrap ")
	if err != nil || len(all) != bundles*scrapsPerBundle {
		t.Fatalf("total scraps = %d, %v", len(all), err)
	}
	// Views over the large store remain consistent.
	view := d2.Store().Trim().View(rootID)
	if view.Len() == 0 {
		t.Fatal("empty view")
	}
}

// TestScaleCompactStoreParity loads the same large graph into the Manager
// and the CompactStore and confirms identical query answers.
func TestScaleCompactStoreParity(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	m := trim.NewManager()
	for i := 0; i < 50000; i++ {
		m.Create(rdf.T(
			rdf.IRI(fmt.Sprintf("http://s/%d", i%5000)),
			rdf.IRI(fmt.Sprintf("http://p/%d", i%50)),
			rdf.Integer(int64(i)),
		))
	}
	c := trim.NewCompactStore()
	if err := c.LoadGraph(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if m.Len() != c.Len() {
		t.Fatalf("len: %d vs %d", m.Len(), c.Len())
	}
	pats := []rdf.Pattern{
		rdf.P(rdf.IRI("http://s/777"), rdf.Zero, rdf.Zero),
		rdf.P(rdf.Zero, rdf.IRI("http://p/7"), rdf.Zero),
		rdf.P(rdf.IRI("http://s/777"), rdf.IRI("http://p/27"), rdf.Zero),
	}
	for _, p := range pats {
		a, b := m.Select(p), c.Select(p)
		if len(a) != len(b) {
			t.Fatalf("pattern %v: %d vs %d", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %v row %d differs", p, i)
			}
		}
	}
}
