#!/bin/sh
# CI lane: lint (vet + slimvet), build, the full test suite under the
# race detector, then the env-gated fault-injection sweep — persistence
# faults plus the WAL torture lane (docs/ROBUSTNESS.md). Mirrors
# `make ci` for environments without make.
set -eux

go vet ./...
go run ./cmd/slimvet ./...
# Gating zero-baseline concurrency lane: the packages the MVCC refactor
# (ROADMAP item 2) will rewrite must pass the four concurrency-safety
# analyzers with no baseline at all — new debt there fails CI immediately.
go run ./cmd/slimvet -baseline "" -enable aliasguard,lockorder,atomichygiene,gorolife ./internal/trim ./internal/wal ./internal/durable
go build ./...
go test -race ./...
SLIM_FAULT_SWEEP=1 go test -run FaultSweep ./internal/trim/ ./internal/mark/
go test -run TraceSmoke ./cmd/trimq/ ./cmd/slimpad/

# Gating slimload smoke: a short concurrent sweep must complete without
# error (exit code only — throughput numbers from CI machines are noise).
go run ./cmd/slimload -duration 2s -goroutines 1,4 -out /dev/null > /dev/null

# Gating space-accounting smoke (docs/OBSERVABILITY.md "Space accounting
# & alloc probes"): the demo pad's store must produce valid space JSON
# whose duplication ratio clears 1.1 — the -min-dup floor exits nonzero
# if the accountant ever stops seeing the demo store's repeated strings.
SPACE_DIR=$(mktemp -d)
go run ./cmd/slimpad demo -out "$SPACE_DIR/rounds.xml" -patients 2 > /dev/null
go run ./cmd/trimq -store "$SPACE_DIR/rounds.xml" -json -min-dup 1.1 space > "$SPACE_DIR/space.json"
grep -q '"duplication_ratio"' "$SPACE_DIR/space.json"
grep -q '"interning"' "$SPACE_DIR/space.json"
rm -rf "$SPACE_DIR"

# Non-gating perf-trajectory lane (docs/OBSERVABILITY.md): record a
# BENCH_<label>.json benchmark snapshot for the CI environment to upload
# or commit. Failures here never fail the build.
make bench-json || echo "bench-json lane failed (non-gating)"

# Non-gating bench regression radar: diff the two newest committed
# snapshots so the per-benchmark delta table lands in the CI output.
make bench-diff || echo "bench-diff lane failed (non-gating)"

# Non-gating scaling lane: the full 1/4/16/64-goroutine slimload sweep,
# written as a BENCH_scale-<label>.json snapshot for upload or commit.
make bench-scale || echo "bench-scale lane failed (non-gating)"
